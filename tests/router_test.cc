// ShardRouter tests (serve/router.h): the sharded serving tier must be
// bitwise-equivalent to the single-process RequestBroker in both modes —
// replica (hash-routed users, full snapshot per worker) and IVF-shard
// (scatter/gather over contiguous inverted-list slices) — and must turn
// worker-process death into explicit kWorkerLost responses, never wrong
// bits or hangs. Also covers the parameter-publish channel and the
// per-worker telemetry rollup.
//
// Labelled `scaleout`.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/broker.h"
#include "serve/router.h"
#include "tests/test_util.h"
#include "utils/trace.h"

namespace pmmrec {
namespace serve {
namespace {

RouterOptions SmallRouter(ShardMode mode, int64_t workers = 2) {
  RouterOptions options;
  options.num_workers = workers;
  options.mode = mode;
  options.handler_threads = 2;
  options.broker.num_workers = 1;
  options.broker.max_wait_us = 50;
  return options;
}

class RouterTest : public test::SmallModelTest {
 protected:
  explicit RouterTest(const ConfigMutator& mutate = {})
      : test::SmallModelTest(mutate), prefixes_(MixedPrefixes(24)) {}

  // Single-process reference responses at the model's current parameters.
  std::vector<std::vector<ScoredId>> BrokerReference(int64_t topk) {
    BrokerOptions options;
    options.num_workers = 1;
    RequestBroker broker(&model_, options);
    std::vector<std::vector<ScoredId>> out;
    for (const auto& prefix : prefixes_) {
      Response resp = broker.Recommend(prefix, topk);
      EXPECT_EQ(resp.status, ServeStatus::kOk);
      out.push_back(std::move(resp.items));
    }
    return out;
  }

  std::vector<std::vector<int32_t>> prefixes_;
};

class IvfRouterTest : public RouterTest {
 protected:
  // Route serving through the IVF index before model construction.
  IvfRouterTest()
      : RouterTest([](PMMRecConfig& config) { config.ann_serving = true; }) {}
};

constexpr int64_t kTopK = 10;

// --- Replica mode ------------------------------------------------------------

TEST_F(RouterTest, ReplicaResponsesMatchSingleProcessBrokerBitwise) {
  const auto want = BrokerReference(kTopK);
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    EXPECT_GT(resp.snapshot_version, 0u);
    test::ExpectBitwise(resp.items, want[i],
                        "replica router prefix " + std::to_string(i));
  }
}

TEST_F(RouterTest, InvalidRequestsAreRejectedLocally) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  EXPECT_EQ(router.Recommend({}, kTopK).status, ServeStatus::kInvalidRequest);
  EXPECT_EQ(router.Recommend(prefixes_[0], 0).status,
            ServeStatus::kInvalidRequest);
  Request request;
  request.prefix = prefixes_[0];
  request.topk = kTopK;
  request.domain = 1;  // The router is single-domain.
  EXPECT_EQ(router.Submit(std::move(request)).get().status,
            ServeStatus::kInvalidRequest);
}

TEST_F(RouterTest, ExpiredDeadlineIsShedByTheWorker) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  const Response resp =
      router.Recommend(prefixes_[0], kTopK, /*deadline_ns=*/1);
  EXPECT_EQ(resp.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(resp.items.empty());
}

TEST_F(RouterTest, KillWorkerIsExplicitLossAndRespawnRecoversBitwise) {
  const auto want = BrokerReference(kTopK);
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  router.KillWorker(0);
  EXPECT_FALSE(router.worker_alive(0));
  EXPECT_TRUE(router.worker_alive(1));

  // Users hashed to the dead replica get kWorkerLost — never a silent
  // re-route; everyone else is still answered bitwise-correctly.
  int64_t lost = 0;
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    if (resp.status == ServeStatus::kWorkerLost) {
      ++lost;
      continue;
    }
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "surviving replica prefix " + std::to_string(i));
  }
  EXPECT_GT(lost, 0) << "24 hashed prefixes should hit the dead worker";
  EXPECT_LT(lost, static_cast<int64_t>(prefixes_.size()));

  router.RespawnWorker(0);
  EXPECT_TRUE(router.worker_alive(0));
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "respawned replica prefix " + std::to_string(i));
  }
}

TEST_F(RouterTest, PublishParamsPropagatesAnUpdateToEveryReplica) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  // Pre-publish sanity: workers serve the construction-time parameters.
  ASSERT_EQ(router.Recommend(prefixes_[0], kTopK).status, ServeStatus::kOk);

  test::TrainOneStep(model_, ds_, config_.max_seq_len);
  router.PublishParams();

  // Reference responses at the *updated* parameters.
  const auto want = BrokerReference(kTopK);
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "post-publish prefix " + std::to_string(i));
  }
}

TEST_F(RouterTest, TelemetryRollupAccountsForEveryRequest) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  constexpr int64_t kRequests = 12;
  for (int64_t i = 0; i < kRequests; ++i) {
    ASSERT_EQ(router
                  .Recommend(prefixes_[static_cast<size_t>(i) %
                                       prefixes_.size()],
                             kTopK)
                  .status,
              ServeStatus::kOk);
  }
  const auto per_worker = router.CollectWorkerTelemetry();
  ASSERT_EQ(per_worker.size(), 2u);
  uint64_t completed = 0;
  uint64_t latency_count = 0;
  for (const auto& snapshot : per_worker) {
    for (const auto& [name, value] : snapshot.counters) {
      if (name == "serve.worker.completed") completed += value;
    }
    for (const auto& hist : snapshot.histograms) {
      if (hist.name == "serve.latency_us") latency_count += hist.count;
    }
  }
  EXPECT_EQ(completed, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(latency_count, static_cast<uint64_t>(kRequests))
      << "per-worker latency histograms should cover every request";

  // Rolling the snapshots up into this process reproduces the totals.
  trace::ResetForTest();
  for (const auto& snapshot : per_worker) trace::MergeTelemetry(snapshot);
  EXPECT_EQ(trace::Counter::Get("serve.worker.completed").value(),
            static_cast<uint64_t>(kRequests));
  EXPECT_EQ(trace::Histogram::Get("serve.latency_us").count(),
            static_cast<uint64_t>(kRequests));
  trace::ResetForTest();
}

TEST_F(RouterTest, ShutdownRejectsNewSubmits) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kReplica));
  router.Shutdown();
  EXPECT_EQ(router.Recommend(prefixes_[0], kTopK).status,
            ServeStatus::kShutdown);
}

// --- IVF-shard mode ----------------------------------------------------------

TEST_F(IvfRouterTest, ShardedRetrievalMatchesSingleProcessBrokerBitwise) {
  const auto want = BrokerReference(kTopK);
  ShardRouter router(&model_, SmallRouter(ShardMode::kIvfShard));
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "ivf shard prefix " + std::to_string(i));
  }
}

TEST_F(IvfRouterTest, ThreeShardsStillMatchBitwise) {
  const auto want = BrokerReference(kTopK);
  ShardRouter router(&model_, SmallRouter(ShardMode::kIvfShard, 3));
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "3-shard prefix " + std::to_string(i));
  }
}

TEST_F(IvfRouterTest, AnyDeadShardFailsTheWholeRequest) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kIvfShard));
  ASSERT_EQ(router.Recommend(prefixes_[0], kTopK).status, ServeStatus::kOk);
  router.KillWorker(1);
  // A gather response needs every shard: all requests are explicit losses
  // while any worker is down.
  EXPECT_EQ(router.Recommend(prefixes_[0], kTopK).status,
            ServeStatus::kWorkerLost);
  router.RespawnWorker(1);
  const auto want = BrokerReference(kTopK);
  for (size_t i = 0; i < prefixes_.size(); ++i) {
    const Response resp = router.Recommend(prefixes_[i], kTopK);
    ASSERT_EQ(resp.status, ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "respawned shard prefix " + std::to_string(i));
  }
}

TEST_F(IvfRouterTest, ExpiredDeadlineIsShedByTheShards) {
  ShardRouter router(&model_, SmallRouter(ShardMode::kIvfShard));
  const Response resp =
      router.Recommend(prefixes_[0], kTopK, /*deadline_ns=*/1);
  EXPECT_EQ(resp.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(resp.items.empty());
}

}  // namespace
}  // namespace serve
}  // namespace pmmrec
