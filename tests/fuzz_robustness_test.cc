// Fuzz-style robustness tests: deserializers must reject arbitrary
// corruption with a Status (never crash, never hang, never over-allocate),
// loss computations must stay finite under randomized inputs, and the
// plan cache must stay bitwise-exact under randomized churn (shape
// changes, param updates, capacity changes, serving-path mixes).

#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/losses.h"
#include "core/pmmrec.h"
#include "core/serving.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/serialization.h"
#include "nn/layers.h"
#include "serve/broker.h"
#include "serve/router.h"
#include "tests/test_util.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

Dataset FuzzDataset() {
  SyntheticWorld world{WorldConfig{}};
  DatasetGenerator gen(&world);
  PlatformConfig pc;
  pc.name = "Fuzz";
  pc.platform = "Bili";
  pc.clusters = {0, 1};
  pc.n_items = 15;
  pc.n_users = 10;
  pc.seed = 4;
  return gen.Generate(pc);
}

TEST(FuzzRobustnessTest, DatasetReaderSurvivesRandomByteFlips) {
  const Dataset original = FuzzDataset();
  BinaryWriter writer;
  WriteDataset(original, &writer);
  const std::vector<uint8_t>& good = writer.buffer();

  Rng rng(123);
  int64_t accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = good;
    // Flip 1-4 random bytes.
    const int64_t flips = rng.UniformInt(1, 5);
    for (int64_t f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(mutated.size())));
      mutated[pos] ^= static_cast<uint8_t>(rng.NextUint64(256));
    }
    BinaryReader reader(std::move(mutated));
    Dataset out;
    const Status st = ReadDataset(&reader, &out);  // Must not crash.
    if (st.ok()) {
      ++accepted;
      // If accepted, the result must still be internally consistent.
      for (const auto& seq : out.sequences) {
        for (int32_t item : seq) {
          ASSERT_GE(item, 0);
          ASSERT_LT(item, out.num_items());
        }
      }
    }
  }
  // Some single-byte flips only touch float payloads and are legitimately
  // accepted; structural corruption must be rejected.
  EXPECT_LT(accepted, 200);
}

TEST(FuzzRobustnessTest, DatasetReaderSurvivesRandomTruncation) {
  const Dataset original = FuzzDataset();
  BinaryWriter writer;
  WriteDataset(original, &writer);
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = static_cast<size_t>(
        rng.NextUint64(static_cast<uint64_t>(writer.buffer().size())));
    std::vector<uint8_t> truncated(writer.buffer().begin(),
                                   writer.buffer().begin() +
                                       static_cast<int64_t>(cut));
    BinaryReader reader(std::move(truncated));
    Dataset out;
    EXPECT_FALSE(ReadDataset(&reader, &out).ok());
  }
}

TEST(FuzzRobustnessTest, ModelCheckpointReaderSurvivesGarbage) {
  Rng rng(55);
  Linear module(6, 4, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t size = static_cast<size_t>(rng.UniformInt(0, 200));
    std::vector<uint8_t> garbage(size);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextUint64(256));
    }
    BinaryReader reader(std::move(garbage));
    const Status st = module.LoadState(&reader);  // Must not crash.
    (void)st;
  }
}

TEST(FuzzRobustnessTest, LossesStayFiniteUnderExtremeActivations) {
  // Very large and very small representations must not produce NaN/Inf
  // losses (softmax stabilization, log clamping, l2-normalize epsilon).
  const SeqBatch batch = MakeBatchFromSequences({{0, 1, 2}, {3, 4, 5}}, 3);
  Rng rng(77);
  for (float scale : {1e-6f, 1.0f, 1e3f}) {
    Tensor t = Tensor::Randn(Shape{6, 4}, rng, scale, true);
    Tensor v = Tensor::Randn(Shape{6, 4}, rng, scale, true);
    Tensor hidden = Tensor::Randn(Shape{2, 3, 4}, rng, scale, true);
    Tensor reps = Tensor::Randn(Shape{6, 4}, rng, scale, true);

    const float dap = DapLoss(hidden, reps, batch).item();
    EXPECT_TRUE(std::isfinite(dap)) << "DAP at scale " << scale;
    const float nicl =
        CrossModalLoss(t, v, batch, NiclMode::kNicl, 0.5f).item();
    EXPECT_TRUE(std::isfinite(nicl)) << "NICL at scale " << scale;
    const float rcl = RclLoss(hidden, hidden, batch, 0.5f).item();
    EXPECT_TRUE(std::isfinite(rcl)) << "RCL at scale " << scale;

    // Gradients must also be finite.
    Tensor total = Add(DapLoss(hidden, reps, batch),
                       CrossModalLoss(t, v, batch, NiclMode::kNicl, 0.5f));
    total.Backward();
    for (Tensor* p : {&t, &v, &hidden, &reps}) {
      const float* g = p->grad_data();
      for (int64_t i = 0; i < p->numel(); ++i) {
        ASSERT_TRUE(std::isfinite(g[i])) << "grad at scale " << scale;
      }
    }
  }
}

TEST(FuzzRobustnessTest, QuantizationRoundtripBoundHoldsOnRandomTables) {
  // Randomized shapes, magnitudes and sparsity patterns: the documented
  // per-element bound |x - scale*(q - zp)| <= scale/2 must hold for all
  // of them (small relative slack for the double->float scale rounding).
  Rng rng(901);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rows = rng.UniformInt(1, 40);
    const int64_t width = rng.UniformInt(1, 70);
    std::vector<float> table(static_cast<size_t>(rows * width));
    const float magnitude = std::pow(10.0f, rng.UniformFloat(-35.0f, 35.0f));
    for (float& v : table) {
      // Mix of zeros, constants and noise so degenerate rows appear.
      const float u = rng.UniformFloat();
      v = u < 0.2f ? 0.0f : rng.NormalFloat(0.0f, magnitude);
    }
    QuantizedTable qt;
    QuantizeTableRows(table.data(), rows, width, &qt);
    for (int64_t r = 0; r < rows; ++r) {
      const double s = static_cast<double>(qt.scales[static_cast<size_t>(r)]);
      ASSERT_TRUE(std::isfinite(s) && s > 0.0)
          << "trial " << trial << " row " << r;
      const double zp =
          static_cast<double>(qt.zero_points[static_cast<size_t>(r)]);
      for (int64_t j = 0; j < width; ++j) {
        const double x =
            static_cast<double>(table[static_cast<size_t>(r * width + j)]);
        const double code = static_cast<double>(
            qt.q[static_cast<size_t>(r * width + j)]);
        ASSERT_LE(std::fabs(x - s * (code - zp)), 0.5 * s * (1.0 + 1e-5))
            << "trial " << trial << " row " << r << " col " << j;
      }
    }
  }
}

TEST(FuzzRobustnessTest, NonFiniteTableRowsAreRejectedAtQuantization) {
  // NaN/Inf must die at the quantization boundary with the checked
  // message — never be encoded and served. Fuzz the position and kind.
  Rng rng(902);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t rows = rng.UniformInt(1, 8);
    const int64_t width = rng.UniformInt(1, 24);
    std::vector<float> table(static_cast<size_t>(rows * width));
    for (float& v : table) v = rng.NormalFloat();
    const size_t poison = static_cast<size_t>(
        rng.NextUint64(static_cast<uint64_t>(table.size())));
    switch (trial % 3) {
      case 0: table[poison] = std::numeric_limits<float>::quiet_NaN(); break;
      case 1: table[poison] = std::numeric_limits<float>::infinity(); break;
      default: table[poison] = -std::numeric_limits<float>::infinity();
    }
    QuantizedTable qt;
    EXPECT_DEATH(QuantizeTableRows(table.data(), rows, width, &qt),
                 "non-finite");
  }
  // Same boundary on the query side.
  std::vector<float> query(4, 1.0f);
  query[2] = std::numeric_limits<float>::quiet_NaN();
  std::vector<int8_t> q(4);
  float scale = 0.0f;
  int32_t sum = 0;
  EXPECT_DEATH(QuantizeQueryRows(query.data(), 1, 4, q.data(), &scale, &sum),
               "non-finite");
}

TEST(FuzzRobustnessTest, PlanCacheChurnStaysBitwiseExact) {
  // Randomized interleaving of everything that stresses the plan cache:
  // batch-shape changes (new keys), parameter updates (invalidation),
  // capacity shrinks (eviction), planned-inference toggles, thread-count
  // changes, and all four serving entry points including broker load.
  // After every single step the planned twin must be bitwise equal to the
  // eager twin — a plan that survives churn it should not survive shows
  // up immediately as a score mismatch.
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  config.quantized_serving = true;  // Exercise the int8 and IVF consumers
  config.ann_serving = true;        // of the planned user representations.
  PMMRecConfig planned_config = config;
  planned_config.planned_inference = true;

  PMMRecModel eager(config, 42);
  eager.AttachDataset(&ds);
  PMMRecModel planned(planned_config, 42);
  planned.AttachDataset(&ds);

  Rng rng(1009);
  const auto random_prefixes = [&] {
    const int64_t n = rng.UniformInt(1, 7);
    std::vector<std::vector<int32_t>> out;
    for (int64_t i = 0; i < n; ++i) {
      std::vector<int32_t> p = ds.TestPrefix(rng.UniformInt(0, ds.num_users()));
      p.resize(static_cast<size_t>(
          1 + rng.UniformInt(0, static_cast<int64_t>(p.size()))));
      out.push_back(std::move(p));
    }
    return out;
  };
  const auto expect_rows_bitwise = [](
      const std::vector<std::vector<ScoredId>>& got,
      const std::vector<std::vector<ScoredId>>& want, const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i) {
      test::ExpectBitwise(got[i], want[i], what + " row " + std::to_string(i));
    }
  };

  for (int step = 0; step < 60; ++step) {
    NumThreadsGuard guard(rng.UniformInt(1, 5));
    const std::string what = "step " + std::to_string(step);
    switch (rng.UniformInt(0, 6)) {
      case 0: {  // Full-catalogue batched scoring, random shapes.
        const auto prefixes = random_prefixes();
        const size_t n =
            prefixes.size() * static_cast<size_t>(ds.num_items());
        std::vector<float> got(n), want(n);
        planned.ScoreUsersBatched(prefixes, got.data());
        eager.ScoreUsersBatched(prefixes, want.data());
        ASSERT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
            << what;
        break;
      }
      case 1: {  // Quantized two-stage candidates.
        const auto prefixes = random_prefixes();
        expect_rows_bitwise(planned.ScoreUsersCandidates(prefixes),
                            eager.ScoreUsersCandidates(prefixes),
                            what + " quant");
        break;
      }
      case 2: {  // IVF retrieval (both models route ANN here).
        const auto prefixes = random_prefixes();
        const int64_t limit = rng.UniformInt(5, 21);
        expect_rows_bitwise(planned.RetrieveCandidates(prefixes, limit),
                            eager.RetrieveCandidates(prefixes, limit),
                            what + " ivf");
        break;
      }
      case 3: {  // Broker load (ivf+int8 route, multi-worker).
        const auto prefixes = random_prefixes();
        serve::BrokerOptions options;
        options.num_workers = rng.UniformInt(1, 3);
        options.max_batch = rng.UniformInt(1, 9);
        options.max_wait_us = 100;
        serve::RequestBroker planned_broker(&planned, options);
        serve::RequestBroker eager_broker(&eager, options);
        for (const auto& prefix : prefixes) {
          const serve::Response got = planned_broker.Recommend(prefix, 10);
          const serve::Response want = eager_broker.Recommend(prefix, 10);
          ASSERT_EQ(got.status, serve::ServeStatus::kOk) << what;
          ASSERT_EQ(want.status, serve::ServeStatus::kOk) << what;
          test::ExpectBitwise(got.items, want.items, what + " broker");
        }
        break;
      }
      case 4: {  // Identical parameter update on both twins: every
                 // recorded plan and serving table goes stale at once.
        test::TrainOneStep(planned, ds, config.max_seq_len);
        test::TrainOneStep(eager, ds, config.max_seq_len);
        break;
      }
      default: {  // Cache-shape churn: shrink/grow capacity (forces
                  // evictions) and occasionally disable planning for a
                  // step so stale entries sit idle before revalidation.
        planned.plan_cache().set_capacity(rng.UniformInt(1, 6));
        if (rng.UniformInt(0, 2) == 0) {
          planned.SetPlannedInference(false);
          const auto prefixes = random_prefixes();
          const size_t n =
              prefixes.size() * static_cast<size_t>(ds.num_items());
          std::vector<float> got(n), want(n);
          planned.ScoreUsersBatched(prefixes, got.data());
          eager.ScoreUsersBatched(prefixes, want.data());
          ASSERT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)),
                    0)
              << what << " (planning disabled)";
          planned.SetPlannedInference(true);
        }
        break;
      }
    }
  }

  const PlanCache::Stats stats = planned.plan_cache().stats();
  EXPECT_GT(stats.records, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.record_failures, 0u)
      << "churn drove a group shape into a poisoned recording";
}

TEST(FuzzRobustnessTest, SnapshotChurnUnderBrokerLoadStaysBitwiseExact) {
  // Randomized interleaving of everything that stresses the versioned
  // snapshot protocol: live train-and-publish cycles, catalogue hot-adds,
  // plan-cache churn on the live model, and broker load submitted both
  // synchronously and in async bursts left in flight across publishes.
  // Every response is checked bitwise against a reference recomputed from
  // the exact snapshot version it was answered from — a batch that mixes
  // versions, reads a retired table, or observes a half-published
  // snapshot shows up immediately as a score mismatch.
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  Dataset ds = suite.sources[0];  // Mutable copy: the hot-add target.
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  config.quantized_serving = true;  // Combined ivf+int8 serving route,
  config.ann_serving = true;        // with per-snapshot recorded plans.
  config.planned_inference = true;
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);

  serve::BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.max_wait_us = 100;
  options.live_updates = true;
  serve::RequestBroker broker(&model, options);

  LiveUpdater::Options uopts;
  uopts.max_seq_len = config.max_seq_len;
  LiveUpdater updater(&model, &ds, uopts);

  // Every published version stays pinned here so any response can be
  // verified against the snapshot it was served from, long after that
  // version retired from the cache.
  std::map<uint64_t, std::shared_ptr<const ServingSnapshot>> published;
  const auto remember = [&](std::shared_ptr<const ServingSnapshot> snap) {
    ASSERT_NE(snap, nullptr);
    published[snap->version] = std::move(snap);
  };
  remember(model.item_table_cache().Pin());  // The broker's initial publish.

  std::vector<std::vector<int32_t>> sent_prefixes;
  std::vector<int64_t> sent_topk;
  std::vector<std::future<serve::Response>> futures;
  size_t verified = 0;
  // Settles every outstanding response and replays it on its pinned
  // version. Publishes only happen on this thread, which blocks in get()
  // here, so every version a worker can have pinned is already in
  // `published` when its response is verified.
  const auto drain_and_verify = [&] {
    for (; verified < futures.size(); ++verified) {
      const serve::Response response = futures[verified].get();
      ASSERT_EQ(response.status, serve::ServeStatus::kOk)
          << "request " << verified;
      const auto it = published.find(response.snapshot_version);
      ASSERT_NE(it, published.end())
          << "request " << verified << " served from unknown version "
          << response.snapshot_version;
      // The broker's quantized route at its auto window, replayed on the
      // pinned version; self-contained snapshots make this bitwise
      // reproducible no matter how far the live parameters moved since.
      const auto ranked = model.ScoreUsersCandidatesOn(
          it->second, std::span<const std::vector<int32_t>>(
                          &sent_prefixes[verified], 1));
      ASSERT_EQ(ranked.size(), 1u);
      test::ExpectBitwise(
          response.items,
          TopKFromRanked(ranked[0], sent_topk[verified],
                         sent_prefixes[verified]),
          "request " + std::to_string(verified) + " at v" +
              std::to_string(response.snapshot_version));
    }
  };
  const auto submit_one = [&](Rng& rng) {
    serve::Request request;
    request.prefix = ds.TestPrefix(rng.UniformInt(0, ds.num_users()));
    request.topk = rng.UniformInt(1, 12);
    sent_prefixes.push_back(request.prefix);
    sent_topk.push_back(request.topk);
    futures.push_back(broker.Submit(std::move(request)));
  };

  Rng rng(2027);
  for (int step = 0; step < 36; ++step) {
    switch (rng.UniformInt(0, 5)) {
      case 0:  // Live update: one optimizer step, publish vN+1 while any
               // in-flight batch keeps answering from vN.
        remember(updater.Step());
        break;
      case 1: {  // Catalogue hot-add: clone a random item, publish. Only
                 // this thread mutates the dataset; workers read only
                 // snapshot tables.
        ds.items.push_back(
            ds.items[static_cast<size_t>(rng.UniformInt(0, ds.num_items()))]);
        remember(updater.Publish());
        break;
      }
      case 2:  // Plan churn on the live model. Harmless to live serving
               // by construction: snapshots carry their own pinned plan
               // caches, so evicting or shrinking the model's cache must
               // not change one served bit.
        model.plan_cache().set_capacity(rng.UniformInt(1, 6));
        break;
      case 3:  // Async burst left in flight across subsequent publishes.
        for (int64_t i = rng.UniformInt(1, 5); i > 0; --i) submit_one(rng);
        break;
      default:  // Synchronous probe: submit, wait, and settle the backlog
                // so a failure localizes to a recent step.
        submit_one(rng);
        futures.back().wait();
        drain_and_verify();
        break;
    }
  }
  drain_and_verify();
  ASSERT_GT(futures.size(), 0u);
  EXPECT_GE(published.size(), 2u) << "churn never published a new version";
}

TEST(FuzzRobustnessTest, RouterKillRespawnChurnStaysBitwiseExact) {
  // Randomized interleaving of everything that stresses the multi-process
  // serving tier's failure path: async request bursts left in flight,
  // SIGKILL of a random replica mid-load, respawn, and shutdown-free
  // drains. The contract under churn is strict trichotomy — every settled
  // response is either kOk and bitwise-identical to the single-process
  // broker, or an explicit kWorkerLost/kQueueFull; never wrong bits,
  // never a hang, never a silent re-route to a surviving replica.
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);

  Rng rng(3301);
  std::vector<std::vector<int32_t>> prefixes;
  for (int i = 0; i < 16; ++i) {
    std::vector<int32_t> p = ds.TestPrefix(rng.UniformInt(0, ds.num_users()));
    p.resize(static_cast<size_t>(
        1 + rng.UniformInt(0, static_cast<int64_t>(p.size()))));
    prefixes.push_back(std::move(p));
  }
  constexpr int64_t kTopK = 10;

  // Single-process reference at the (frozen) construction parameters.
  std::vector<std::vector<ScoredId>> want;
  {
    serve::BrokerOptions options;
    options.num_workers = 1;
    serve::RequestBroker reference(&model, options);
    for (const auto& prefix : prefixes) {
      serve::Response resp = reference.Recommend(prefix, kTopK);
      ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
      want.push_back(std::move(resp.items));
    }
  }

  serve::RouterOptions options;
  options.num_workers = 2;
  options.mode = serve::ShardMode::kReplica;
  options.handler_threads = 2;
  options.broker.num_workers = 1;
  options.broker.max_wait_us = 50;
  serve::ShardRouter router(&model, options);

  std::vector<std::future<serve::Response>> futures;
  std::vector<size_t> sent;  // prefix index per future
  int64_t ok = 0;
  int64_t lost = 0;
  const auto drain = [&] {
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::Response resp = futures[i].get();
      if (resp.status == serve::ServeStatus::kOk) {
        ++ok;
        test::ExpectBitwise(resp.items, want[sent[i]],
                            "churn prefix " + std::to_string(sent[i]));
      } else {
        // Explicit shedding only — wrong answers would fail above.
        ASSERT_TRUE(resp.status == serve::ServeStatus::kWorkerLost ||
                    resp.status == serve::ServeStatus::kQueueFull)
            << "unexpected status "
            << serve::ToString(resp.status) << " for prefix " << sent[i];
        ++lost;
      }
    }
    futures.clear();
    sent.clear();
  };

  for (int step = 0; step < 40; ++step) {
    switch (rng.UniformInt(0, 4)) {
      case 0: {  // Async burst, left in flight across later kills.
        for (int64_t i = rng.UniformInt(1, 6); i > 0; --i) {
          const size_t which = static_cast<size_t>(
              rng.NextUint64(static_cast<uint64_t>(prefixes.size())));
          serve::Request request;
          request.prefix = prefixes[which];
          request.topk = kTopK;
          sent.push_back(which);
          futures.push_back(router.Submit(std::move(request)));
        }
        break;
      }
      case 1: {  // SIGKILL a random live replica mid-load.
        const int64_t victim = rng.UniformInt(0, options.num_workers);
        if (router.worker_alive(victim)) router.KillWorker(victim);
        break;
      }
      case 2: {  // Respawn whatever is down. KillWorker joined the
                 // receiver, so every orphaned in-flight request has
                 // already settled as kWorkerLost by now.
        for (int64_t w = 0; w < options.num_workers; ++w) {
          if (!router.worker_alive(w)) router.RespawnWorker(w);
        }
        break;
      }
      default:  // Settle the backlog so failures localize.
        drain();
        break;
    }
  }
  for (int64_t w = 0; w < options.num_workers; ++w) {
    if (!router.worker_alive(w)) router.RespawnWorker(w);
  }
  drain();
  EXPECT_GT(ok, 0) << "churn never completed a request";
  EXPECT_GT(lost, 0) << "churn never orphaned a request";

  // Full recovery: with every replica respawned, all routes answer
  // bitwise-correctly again.
  for (size_t i = 0; i < prefixes.size(); ++i) {
    const serve::Response resp = router.Recommend(prefixes[i], kTopK);
    ASSERT_EQ(resp.status, serve::ServeStatus::kOk) << "prefix " << i;
    test::ExpectBitwise(resp.items, want[i],
                        "recovered prefix " + std::to_string(i));
  }
}

TEST(FuzzRobustnessTest, ZeroVectorsDoNotBreakNormalization) {
  Tensor zeros = Tensor::Zeros(Shape{3, 4}, true);
  Tensor normalized = L2Normalize(zeros);
  for (int64_t i = 0; i < normalized.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(normalized.data()[i]));
  }
  SumAll(Square(normalized)).Backward();
  for (int64_t i = 0; i < zeros.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(zeros.grad_data()[i]));
  }
}

}  // namespace
}  // namespace pmmrec
