// Fuzz-style robustness tests: deserializers must reject arbitrary
// corruption with a Status (never crash, never hang, never over-allocate),
// and loss computations must stay finite under randomized inputs.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/losses.h"
#include "core/serving.h"
#include "data/generator.h"
#include "data/serialization.h"
#include "nn/layers.h"

namespace pmmrec {
namespace {

Dataset FuzzDataset() {
  SyntheticWorld world{WorldConfig{}};
  DatasetGenerator gen(&world);
  PlatformConfig pc;
  pc.name = "Fuzz";
  pc.platform = "Bili";
  pc.clusters = {0, 1};
  pc.n_items = 15;
  pc.n_users = 10;
  pc.seed = 4;
  return gen.Generate(pc);
}

TEST(FuzzRobustnessTest, DatasetReaderSurvivesRandomByteFlips) {
  const Dataset original = FuzzDataset();
  BinaryWriter writer;
  WriteDataset(original, &writer);
  const std::vector<uint8_t>& good = writer.buffer();

  Rng rng(123);
  int64_t accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = good;
    // Flip 1-4 random bytes.
    const int64_t flips = rng.UniformInt(1, 5);
    for (int64_t f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(mutated.size())));
      mutated[pos] ^= static_cast<uint8_t>(rng.NextUint64(256));
    }
    BinaryReader reader(std::move(mutated));
    Dataset out;
    const Status st = ReadDataset(&reader, &out);  // Must not crash.
    if (st.ok()) {
      ++accepted;
      // If accepted, the result must still be internally consistent.
      for (const auto& seq : out.sequences) {
        for (int32_t item : seq) {
          ASSERT_GE(item, 0);
          ASSERT_LT(item, out.num_items());
        }
      }
    }
  }
  // Some single-byte flips only touch float payloads and are legitimately
  // accepted; structural corruption must be rejected.
  EXPECT_LT(accepted, 200);
}

TEST(FuzzRobustnessTest, DatasetReaderSurvivesRandomTruncation) {
  const Dataset original = FuzzDataset();
  BinaryWriter writer;
  WriteDataset(original, &writer);
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = static_cast<size_t>(
        rng.NextUint64(static_cast<uint64_t>(writer.buffer().size())));
    std::vector<uint8_t> truncated(writer.buffer().begin(),
                                   writer.buffer().begin() +
                                       static_cast<int64_t>(cut));
    BinaryReader reader(std::move(truncated));
    Dataset out;
    EXPECT_FALSE(ReadDataset(&reader, &out).ok());
  }
}

TEST(FuzzRobustnessTest, ModelCheckpointReaderSurvivesGarbage) {
  Rng rng(55);
  Linear module(6, 4, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t size = static_cast<size_t>(rng.UniformInt(0, 200));
    std::vector<uint8_t> garbage(size);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextUint64(256));
    }
    BinaryReader reader(std::move(garbage));
    const Status st = module.LoadState(&reader);  // Must not crash.
    (void)st;
  }
}

TEST(FuzzRobustnessTest, LossesStayFiniteUnderExtremeActivations) {
  // Very large and very small representations must not produce NaN/Inf
  // losses (softmax stabilization, log clamping, l2-normalize epsilon).
  const SeqBatch batch = MakeBatchFromSequences({{0, 1, 2}, {3, 4, 5}}, 3);
  Rng rng(77);
  for (float scale : {1e-6f, 1.0f, 1e3f}) {
    Tensor t = Tensor::Randn(Shape{6, 4}, rng, scale, true);
    Tensor v = Tensor::Randn(Shape{6, 4}, rng, scale, true);
    Tensor hidden = Tensor::Randn(Shape{2, 3, 4}, rng, scale, true);
    Tensor reps = Tensor::Randn(Shape{6, 4}, rng, scale, true);

    const float dap = DapLoss(hidden, reps, batch).item();
    EXPECT_TRUE(std::isfinite(dap)) << "DAP at scale " << scale;
    const float nicl =
        CrossModalLoss(t, v, batch, NiclMode::kNicl, 0.5f).item();
    EXPECT_TRUE(std::isfinite(nicl)) << "NICL at scale " << scale;
    const float rcl = RclLoss(hidden, hidden, batch, 0.5f).item();
    EXPECT_TRUE(std::isfinite(rcl)) << "RCL at scale " << scale;

    // Gradients must also be finite.
    Tensor total = Add(DapLoss(hidden, reps, batch),
                       CrossModalLoss(t, v, batch, NiclMode::kNicl, 0.5f));
    total.Backward();
    for (Tensor* p : {&t, &v, &hidden, &reps}) {
      const float* g = p->grad_data();
      for (int64_t i = 0; i < p->numel(); ++i) {
        ASSERT_TRUE(std::isfinite(g[i])) << "grad at scale " << scale;
      }
    }
  }
}

TEST(FuzzRobustnessTest, QuantizationRoundtripBoundHoldsOnRandomTables) {
  // Randomized shapes, magnitudes and sparsity patterns: the documented
  // per-element bound |x - scale*(q - zp)| <= scale/2 must hold for all
  // of them (small relative slack for the double->float scale rounding).
  Rng rng(901);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rows = rng.UniformInt(1, 40);
    const int64_t width = rng.UniformInt(1, 70);
    std::vector<float> table(static_cast<size_t>(rows * width));
    const float magnitude = std::pow(10.0f, rng.UniformFloat(-35.0f, 35.0f));
    for (float& v : table) {
      // Mix of zeros, constants and noise so degenerate rows appear.
      const float u = rng.UniformFloat();
      v = u < 0.2f ? 0.0f : rng.NormalFloat(0.0f, magnitude);
    }
    QuantizedTable qt;
    QuantizeTableRows(table.data(), rows, width, &qt);
    for (int64_t r = 0; r < rows; ++r) {
      const double s = static_cast<double>(qt.scales[static_cast<size_t>(r)]);
      ASSERT_TRUE(std::isfinite(s) && s > 0.0)
          << "trial " << trial << " row " << r;
      const double zp =
          static_cast<double>(qt.zero_points[static_cast<size_t>(r)]);
      for (int64_t j = 0; j < width; ++j) {
        const double x =
            static_cast<double>(table[static_cast<size_t>(r * width + j)]);
        const double code = static_cast<double>(
            qt.q[static_cast<size_t>(r * width + j)]);
        ASSERT_LE(std::fabs(x - s * (code - zp)), 0.5 * s * (1.0 + 1e-5))
            << "trial " << trial << " row " << r << " col " << j;
      }
    }
  }
}

TEST(FuzzRobustnessTest, NonFiniteTableRowsAreRejectedAtQuantization) {
  // NaN/Inf must die at the quantization boundary with the checked
  // message — never be encoded and served. Fuzz the position and kind.
  Rng rng(902);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t rows = rng.UniformInt(1, 8);
    const int64_t width = rng.UniformInt(1, 24);
    std::vector<float> table(static_cast<size_t>(rows * width));
    for (float& v : table) v = rng.NormalFloat();
    const size_t poison = static_cast<size_t>(
        rng.NextUint64(static_cast<uint64_t>(table.size())));
    switch (trial % 3) {
      case 0: table[poison] = std::numeric_limits<float>::quiet_NaN(); break;
      case 1: table[poison] = std::numeric_limits<float>::infinity(); break;
      default: table[poison] = -std::numeric_limits<float>::infinity();
    }
    QuantizedTable qt;
    EXPECT_DEATH(QuantizeTableRows(table.data(), rows, width, &qt),
                 "non-finite");
  }
  // Same boundary on the query side.
  std::vector<float> query(4, 1.0f);
  query[2] = std::numeric_limits<float>::quiet_NaN();
  std::vector<int8_t> q(4);
  float scale = 0.0f;
  int32_t sum = 0;
  EXPECT_DEATH(QuantizeQueryRows(query.data(), 1, 4, q.data(), &scale, &sum),
               "non-finite");
}

TEST(FuzzRobustnessTest, ZeroVectorsDoNotBreakNormalization) {
  Tensor zeros = Tensor::Zeros(Shape{3, 4}, true);
  Tensor normalized = L2Normalize(zeros);
  for (int64_t i = 0; i < normalized.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(normalized.data()[i]));
  }
  SumAll(Square(normalized)).Backward();
  for (int64_t i = 0; i < zeros.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(zeros.grad_data()[i]));
  }
}

}  // namespace
}  // namespace pmmrec
