#ifndef PMMREC_TESTS_GRADCHECK_H_
#define PMMREC_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace pmmrec {
namespace testing {

// Verifies analytic gradients against central finite differences.
//
// `loss_fn` must rebuild the forward graph from `param` on every call and
// return a scalar. The check runs backward once to collect the analytic
// gradient, then perturbs every element of `param` (or a strided subset if
// the tensor is large) and compares.
inline void ExpectGradientsClose(const std::function<Tensor()>& loss_fn,
                                 Tensor param, float eps = 1e-2f,
                                 float tolerance = 2e-2f,
                                 int64_t max_checks = 64) {
  param.ZeroGrad();
  Tensor loss = loss_fn();
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();
  ASSERT_TRUE(param.has_grad());
  std::vector<float> analytic(param.grad_data(),
                              param.grad_data() + param.numel());

  const int64_t n = param.numel();
  const int64_t stride = std::max<int64_t>(1, n / max_checks);
  for (int64_t i = 0; i < n; i += stride) {
    float* p = param.data();
    const float original = p[i];
    p[i] = original + eps;
    const float plus = loss_fn().item();
    p[i] = original - eps;
    const float minus = loss_fn().item();
    p[i] = original;
    const float numeric = (plus - minus) / (2.0f * eps);
    const float scale =
        std::max({1.0f, std::fabs(numeric), std::fabs(analytic[i])});
    EXPECT_NEAR(analytic[i], numeric, tolerance * scale)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace testing
}  // namespace pmmrec

#endif  // PMMREC_TESTS_GRADCHECK_H_
