// Kernel-equivalence tests for the intra-op parallel backend.
//
// Every parallelized kernel must produce bit-identical forward values AND
// backward gradients for every thread count (the determinism contract of
// utils/parallel.h). Each case builds identical inputs from a re-seeded
// Rng, runs forward + backward at threads = 1 (the exact serial path) and
// at threads = 2 and 7 (ragged partitions on most shapes), and compares
// every buffer with exact float equality — no tolerance.
//
// Shapes are chosen large enough that the grain heuristic actually splits
// the work at 2 and 7 threads; tiny shapes would silently take the serial
// path and the test would vacuously pass.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

// ---------------------------------------------------------------------------
// ParallelFor primitive.
// ---------------------------------------------------------------------------

TEST(ParallelForTest, EmptyRangeNeverInvokesFn) {
  NumThreadsGuard guard(7);
  std::atomic<int64_t> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(10, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadIsOneInlineCall) {
  NumThreadsGuard guard(1);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(3, 40, 1, [&](int64_t lo, int64_t hi) {
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 3);
  EXPECT_EQ(chunks[0].second, 40);
}

TEST(ParallelForTest, LargeGrainStaysSerial) {
  NumThreadsGuard guard(7);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  std::mutex mu;
  ParallelFor(0, 100, 1000, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 0);
  EXPECT_EQ(chunks[0].second, 100);
}

// Chunks must cover the range exactly once, be contiguous, and spread
// ragged tails one index at a time over the leading chunks.
TEST(ParallelForTest, ChunksPartitionRaggedRanges) {
  struct Case {
    int64_t begin, end, grain, threads;
  };
  const Case cases[] = {
      {0, 10, 1, 7},   {0, 7, 1, 7},    {3, 20, 1, 2},   {0, 100, 9, 7},
      {5, 6, 1, 7},    {0, 1000, 1, 7}, {-4, 11, 1, 3},  {0, 13, 4, 7},
  };
  for (const Case& c : cases) {
    NumThreadsGuard guard(c.threads);
    std::vector<std::pair<int64_t, int64_t>> chunks;
    std::mutex mu;
    ParallelFor(c.begin, c.end, c.grain, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_FALSE(chunks.empty());
    EXPECT_LE(static_cast<int64_t>(chunks.size()), c.threads);
    EXPECT_EQ(chunks.front().first, c.begin);
    EXPECT_EQ(chunks.back().second, c.end);
    int64_t min_size = chunks[0].second - chunks[0].first;
    int64_t max_size = min_size;
    for (size_t i = 0; i < chunks.size(); ++i) {
      const int64_t size = chunks[i].second - chunks[i].first;
      EXPECT_GT(size, 0) << "empty chunk";
      min_size = std::min(min_size, size);
      max_size = std::max(max_size, size);
      if (i > 0) {
        EXPECT_EQ(chunks[i].first, chunks[i - 1].second)
            << "gap or overlap between chunks";
      }
    }
    EXPECT_LE(max_size - min_size, 1)
        << "ragged tail not spread evenly over leading chunks";
  }
}

TEST(ParallelForTest, NestedParallelForRunsInlineAndCoversRange) {
  NumThreadsGuard guard(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // Inner region must degrade to one inline call (no deadlock, no
      // nested fan-out).
      int64_t inner_calls = 0;
      int64_t inner_sum = 0;
      ParallelFor(0, 100, 1, [&](int64_t a, int64_t b) {
        ++inner_calls;
        for (int64_t j = a; j < b; ++j) inner_sum += j;
      });
      EXPECT_EQ(inner_calls, 1);
      EXPECT_EQ(inner_sum, 4950);
      total += 1;
    }
  });
  EXPECT_EQ(total.load(), 8);
}

TEST(ParallelForTest, SetNumThreadsClampsToOne) {
  NumThreadsGuard guard(0);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(-5);
  EXPECT_EQ(GetNumThreads(), 1);
}

// ---------------------------------------------------------------------------
// Kernel equivalence harness.
// ---------------------------------------------------------------------------

using Capture = std::vector<std::vector<float>>;

void AppendValues(const Tensor& t, Capture* cap) {
  cap->emplace_back(t.data(), t.data() + t.numel());
}

void AppendGrad(const Tensor& t, Capture* cap) {
  const float* g = static_cast<const Tensor&>(t).grad_data();
  ASSERT_NE(g, nullptr) << "gradient not populated";
  cap->emplace_back(g, g + t.numel());
}

// Runs `fn` (which must build all of its inputs from scratch, typically
// from a freshly seeded Rng) at threads = 1, 2 and 7 and requires every
// captured buffer to match the serial run bit-for-bit.
template <typename Fn>
void ExpectThreadInvariant(const Fn& fn) {
  Capture reference;
  {
    NumThreadsGuard guard(1);
    fn(&reference);
  }
  ASSERT_FALSE(reference.empty());
  for (int64_t threads : {2, 7}) {
    Capture got;
    {
      NumThreadsGuard guard(threads);
      fn(&got);
    }
    ASSERT_EQ(reference.size(), got.size());
    for (size_t b = 0; b < reference.size(); ++b) {
      ASSERT_EQ(reference[b].size(), got[b].size()) << "buffer " << b;
      for (size_t i = 0; i < reference[b].size(); ++i) {
        ASSERT_EQ(reference[b][i], got[b][i])
            << "threads=" << threads << " buffer=" << b << " elem=" << i
            << " differs from the serial result";
      }
    }
  }
}

// Builds loss = sum((out * w)^2) with a fixed random weighting so backward
// sees a non-uniform upstream gradient.
Tensor WeightedSquareLoss(const Tensor& out, Rng& rng) {
  Tensor w = Tensor::Randn(out.shape(), rng);
  return SumAll(Square(Mul(out, w)));
}

TEST(ParallelKernelsTest, MatMul2D) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(101);
    Tensor a = Tensor::Randn(Shape{64, 48}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{48, 56}, rng, 1.0f, true);
    Tensor out = MatMul(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

TEST(ParallelKernelsTest, MatMulBatched) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(102);
    Tensor a = Tensor::Randn(Shape{4, 33, 24}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{4, 24, 40}, rng, 1.0f, true);
    Tensor out = MatMul(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

// Broadcast rhs: the dB reduction sums over batch*m rows; the kernel
// partitions it over K output rows, which must not change the per-element
// accumulation order.
TEST(ParallelKernelsTest, MatMulBroadcastRhs) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(103);
    Tensor a = Tensor::Randn(Shape{5, 40, 24}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{24, 32}, rng, 1.0f, true);
    Tensor out = MatMul(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

// Fused-transpose variants share the blocked GEMM kernels; their forward
// and all backward partitions must also be thread-invariant.
TEST(ParallelKernelsTest, MatMulNT2D) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(121);
    Tensor a = Tensor::Randn(Shape{64, 48}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{56, 48}, rng, 1.0f, true);
    Tensor out = MatMulNT(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

TEST(ParallelKernelsTest, MatMulNTBatched) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(122);
    Tensor a = Tensor::Randn(Shape{4, 33, 24}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{4, 40, 24}, rng, 1.0f, true);
    Tensor out = MatMulNT(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

// Broadcast rhs: dB partitions over the N rows of the shared gradient
// via a column offset into dC; the band start must not change chains.
TEST(ParallelKernelsTest, MatMulNTBroadcastRhs) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(123);
    Tensor a = Tensor::Randn(Shape{5, 40, 24}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{32, 24}, rng, 1.0f, true);
    Tensor out = MatMulNT(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

TEST(ParallelKernelsTest, MatMulTN2D) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(124);
    Tensor a = Tensor::Randn(Shape{48, 64}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{48, 56}, rng, 1.0f, true);
    Tensor out = MatMulTN(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

TEST(ParallelKernelsTest, MatMulTNBatched) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(125);
    Tensor a = Tensor::Randn(Shape{4, 24, 33}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{4, 24, 40}, rng, 1.0f, true);
    Tensor out = MatMulTN(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

// Broadcast rhs: dB sums every batch entry into the shared [k, n] grad;
// the partition over its k rows must leave batch order (and therefore
// every accumulation chain) fixed.
TEST(ParallelKernelsTest, MatMulTNBroadcastRhs) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(126);
    Tensor a = Tensor::Randn(Shape{5, 24, 40}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{24, 32}, rng, 1.0f, true);
    Tensor out = MatMulTN(a, b);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

TEST(ParallelKernelsTest, Softmax) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(104);
    Tensor x = Tensor::Randn(Shape{600, 32}, rng, 2.0f, true);
    Tensor out = Softmax(x);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(x, cap);
  });
}

TEST(ParallelKernelsTest, LogSoftmax) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(105);
    Tensor x = Tensor::Randn(Shape{600, 32}, rng, 2.0f, true);
    Tensor out = LogSoftmax(x);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(x, cap);
  });
}

// LayerNorm gamma/beta gradients reduce over all rows; the kernel
// partitions those reductions over columns instead, keeping row order.
TEST(ParallelKernelsTest, LayerNorm) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(106);
    Tensor x = Tensor::Randn(Shape{500, 32}, rng, 1.0f, true);
    Tensor gamma = Tensor::Randn(Shape{32}, rng, 0.5f, true);
    Tensor beta = Tensor::Randn(Shape{32}, rng, 0.5f, true);
    Tensor out = LayerNormOp(x, gamma, beta);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(x, cap);
    AppendGrad(gamma, cap);
    AppendGrad(beta, cap);
  });
}

TEST(ParallelKernelsTest, L2Normalize) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(107);
    Tensor x = Tensor::Randn(Shape{400, 48}, rng, 1.0f, true);
    Tensor out = L2Normalize(x);
    AppendValues(out, cap);
    WeightedSquareLoss(out, rng).Backward();
    AppendGrad(x, cap);
  });
}

TEST(ParallelKernelsTest, ElementwiseSameShape) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(108);
    Tensor a = Tensor::Randn(Shape{200, 200}, rng, 1.0f, true);
    Tensor b = Tensor::Randn(Shape{200, 200}, rng, 1.0f, true);
    Tensor out = Mul(Add(a, b), Sub(a, b));
    AppendValues(out, cap);
    SumAll(Square(out)).Backward();
    AppendGrad(a, cap);
    AppendGrad(b, cap);
  });
}

TEST(ParallelKernelsTest, ElementwiseBroadcast) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(109);
    Tensor a = Tensor::Randn(Shape{150, 170}, rng, 1.0f, true);
    Tensor row = Tensor::Randn(Shape{170}, rng, 1.0f, true);
    Tensor col = Tensor::Randn(Shape{150, 1}, rng, 1.0f, true);
    Tensor out = Mul(Add(a, row), col);
    AppendValues(out, cap);
    SumAll(Square(out)).Backward();
    AppendGrad(a, cap);
    AppendGrad(row, cap);
    AppendGrad(col, cap);
  });
}

TEST(ParallelKernelsTest, UnaryActivation) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(110);
    Tensor x = Tensor::Randn(Shape{220, 190}, rng, 1.0f, true);
    Tensor out = Gelu(x);
    AppendValues(out, cap);
    SumAll(Square(out)).Backward();
    AppendGrad(x, cap);
  });
}

// Duplicate indices make the backward a scatter-add with aliasing; it
// stays serial, but forward gathers are partitioned over output rows.
TEST(ParallelKernelsTest, SelectRowsWithDuplicates) {
  ExpectThreadInvariant([](Capture* cap) {
    Rng rng(111);
    Tensor table = Tensor::Randn(Shape{300, 64}, rng, 1.0f, true);
    std::vector<int32_t> rows(400);
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<int32_t>(rng.UniformInt(0, 300));
    }
    Tensor out = SelectRows(table, rows);
    AppendValues(out, cap);
    SumAll(Square(out)).Backward();
    AppendGrad(table, cap);
  });
}

// Randomized-shape sweep: odd/prime dimensions produce ragged partitions
// at both 2 and 7 threads; composite graphs exercise several kernels per
// backward pass.
TEST(ParallelKernelsTest, RandomizedShapeSweep) {
  for (uint64_t seed = 900; seed < 906; ++seed) {
    ExpectThreadInvariant([seed](Capture* cap) {
      Rng rng(seed);
      const int64_t batch = rng.UniformInt(1, 5);
      const int64_t m = rng.UniformInt(17, 80);
      const int64_t k = rng.UniformInt(9, 50);
      const int64_t n = rng.UniformInt(13, 60);
      Tensor a = Tensor::Randn(Shape{batch, m, k}, rng, 1.0f, true);
      Tensor b = Tensor::Randn(Shape{k, n}, rng, 1.0f, true);
      Tensor bias = Tensor::Randn(Shape{n}, rng, 1.0f, true);
      Tensor gamma = Tensor::Randn(Shape{n}, rng, 0.5f, true);
      Tensor beta = Tensor::Randn(Shape{n}, rng, 0.5f, true);
      Tensor h = LayerNormOp(Add(MatMul(a, b), bias), gamma, beta);
      Tensor out = Softmax(h);
      AppendValues(out, cap);
      WeightedSquareLoss(out, rng).Backward();
      AppendGrad(a, cap);
      AppendGrad(b, cap);
      AppendGrad(bias, cap);
      AppendGrad(gamma, cap);
      AppendGrad(beta, cap);
    });
  }
}

}  // namespace
}  // namespace pmmrec
