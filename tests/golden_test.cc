// Golden-trajectory regression harness. A fixed seed, a fixed synthetic
// dataset and a fixed optimisation schedule make the whole train-then-eval
// trajectory deterministic, so its numbers are checked into the repo
// (tests/golden/trajectory.txt) and any drift — a kernel change, an op
// reordering, an accidental nondeterminism — fails this suite.
//
// The claims:
//  1. The recorded trajectory (per-step training losses + final
//     full-ranking metrics) matches the checked-in golden values exactly
//     (values are stored with %.17g, which round-trips doubles).
//  2. The final metrics are identical — as doubles, not approximately —
//     across eager vs planned inference and 1 vs 4 intra-op threads:
//     recorded plans and thread count change how scoring executes, never
//     what it computes.
//
// Regenerate after an *intentional* numeric change with:
//   PMMREC_GOLDEN_REGEN=1 ./tests/golden_test
// and commit the updated fixture together with the change that moved it.
//
// Labelled `golden`.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "dist/process.h"
#include "eval/evaluator.h"
#include "nn/optimizer.h"
#include "tests/test_util.h"
#include "utils/parallel.h"

#ifndef PMMREC_GOLDEN_DIR
#error "PMMREC_GOLDEN_DIR must point at the checked-in tests/golden directory"
#endif

namespace pmmrec {
namespace {

constexpr int64_t kTrainSteps = 4;
constexpr int64_t kBatchUsers = 8;

std::string GoldenPath() {
  return std::string(PMMREC_GOLDEN_DIR) + "/trajectory.txt";
}

bool RegenRequested() {
  const char* env = std::getenv("PMMREC_GOLDEN_REGEN");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

// The trajectory is an ordered list of (name, value) pairs; names make a
// drift report readable and guard against silent reordering.
using Trajectory = std::vector<std::pair<std::string, double>>;

Trajectory LoadGolden(const std::string& path) {
  Trajectory out;
  std::ifstream in(path);
  if (!in) return out;
  std::string name;
  double value;
  while (in >> name >> value) out.emplace_back(name, value);
  return out;
}

void SaveGolden(const std::string& path, const Trajectory& trajectory) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden fixture: " << path;
  for (const auto& [name, value] : trajectory) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << name << ' ' << buf << '\n';
  }
}

void AppendMetrics(Trajectory* t, const std::string& tag,
                   const RankingMetrics& m) {
  t->emplace_back(tag + ".hr10", m.hr10);
  t->emplace_back(tag + ".hr20", m.hr20);
  t->emplace_back(tag + ".hr50", m.hr50);
  t->emplace_back(tag + ".ndcg10", m.ndcg10);
  t->emplace_back(tag + ".ndcg20", m.ndcg20);
  t->emplace_back(tag + ".ndcg50", m.ndcg50);
  t->emplace_back(tag + ".mean_rank", m.mean_rank);
  t->emplace_back(tag + ".count", static_cast<double>(m.count));
}

TEST(GoldenTrajectoryTest, TrainEvalTrajectoryMatchesCheckedInFixture) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);

  // Fixed schedule: kTrainSteps AdamW steps over a rotating user window,
  // all at one intra-op thread (the trajectory is the single-threaded
  // truth; thread-count invariance is asserted on the eval side below).
  Trajectory got;
  {
    NumThreadsGuard guard(1);
    AdamW opt(model.TrainableParameters(), 1e-3f);
    for (int64_t step = 0; step < kTrainSteps; ++step) {
      std::vector<int64_t> users;
      for (int64_t u = 0; u < kBatchUsers; ++u) {
        users.push_back((step * kBatchUsers + u) % ds.num_users());
      }
      const SeqBatch batch = MakeTrainBatch(ds, users, config.max_seq_len);
      Tensor loss = model.TrainStepLoss(batch);
      ASSERT_TRUE(loss.defined());
      loss.Backward();
      opt.Step();
      got.emplace_back("loss.step" + std::to_string(step),
                       static_cast<double>(loss.data()[0]));
    }
  }

  // Final metrics across eager/planned x {1, 4} threads. All four runs
  // must agree exactly — the golden file stores one copy.
  RankingMetrics reference;
  bool have_reference = false;
  for (const bool planned : {false, true}) {
    model.SetPlannedInference(planned);
    for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
      NumThreadsGuard guard(threads);
      const RankingMetrics m =
          EvaluateRanking(model, ds, EvalSplit::kTest);
      const std::string what = std::string(planned ? "planned" : "eager") +
                               " threads=" + std::to_string(threads);
      if (!have_reference) {
        reference = m;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(m.hr10, reference.hr10) << what;
      EXPECT_EQ(m.hr20, reference.hr20) << what;
      EXPECT_EQ(m.hr50, reference.hr50) << what;
      EXPECT_EQ(m.ndcg10, reference.ndcg10) << what;
      EXPECT_EQ(m.ndcg20, reference.ndcg20) << what;
      EXPECT_EQ(m.ndcg50, reference.ndcg50) << what;
      EXPECT_EQ(m.mean_rank, reference.mean_rank) << what;
      EXPECT_EQ(m.count, reference.count) << what;
    }
  }
  model.SetPlannedInference(false);
  ASSERT_TRUE(have_reference);
  AppendMetrics(&got, "test", reference);

  const std::string path = GoldenPath();
  if (RegenRequested()) {
    SaveGolden(path, got);
    GTEST_SKIP() << "golden fixture regenerated: " << path;
  }

  const Trajectory want = LoadGolden(path);
  ASSERT_FALSE(want.empty())
      << "missing golden fixture " << path
      << " — run PMMREC_GOLDEN_REGEN=1 ./tests/golden_test and commit it";
  ASSERT_EQ(got.size(), want.size())
      << "trajectory shape changed; regenerate the fixture if intentional";
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first) << "entry " << i << " renamed";
    EXPECT_EQ(got[i].second, want[i].second)
        << got[i].first << " drifted from the checked-in golden value "
        << "(regenerate with PMMREC_GOLDEN_REGEN=1 if this is intentional)";
  }
}

TEST(GoldenTrajectoryTest, DataParallelFitMatchesFixtureAtAnyWorkerCount) {
  // The distributed-fit determinism contract, golden-enforced: the fit
  // trajectory is a pure function of the gradient-shard count, never of
  // the worker count, and never drifts across commits. A 4-worker fit at 4
  // shards must be bitwise-identical to a 1-worker fit at 4 shards, and
  // both must match the checked-in fixture (tests/golden/
  // trajectory_dist.txt) exactly, down to the final-parameter fingerprint.
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);

  FitOptions fit;
  fit.max_epochs = 2;
  fit.batch_size = 8;
  fit.max_seq_len = 10;
  fit.eval_users = 40;
  fit.patience = 2;
  fit.seed = 7;
  constexpr int64_t kShards = 4;

  PMMRecModel one(config, 42);
  one.AttachDataset(&ds);
  const FitResult serial =
      dist::RunDataParallelFit(one, ds, fit, /*workers=*/1, kShards);

  PMMRecModel four(config, 42);
  four.AttachDataset(&ds);
  const FitResult parallel =
      dist::RunDataParallelFit(four, ds, fit, /*workers=*/4, kShards);

  // Worker-count invariance first: identical trajectories and identical
  // final parameter bits between the 1-worker and 4-worker runs.
  ASSERT_EQ(serial.val_hr10_per_epoch.size(),
            parallel.val_hr10_per_epoch.size());
  for (size_t e = 0; e < serial.val_hr10_per_epoch.size(); ++e) {
    EXPECT_EQ(serial.val_hr10_per_epoch[e], parallel.val_hr10_per_epoch[e])
        << "epoch " << e;
  }
  EXPECT_EQ(serial.final_train_loss, parallel.final_train_loss);
  const uint64_t fp_one = dist::FitFingerprint(serial,
                                               one.TrainableParameters());
  const uint64_t fp_four = dist::FitFingerprint(parallel,
                                                four.TrainableParameters());
  ASSERT_EQ(fp_one, fp_four)
      << "4-worker fit diverged bitwise from the 1-worker fit";

  Trajectory got;
  for (size_t e = 0; e < serial.val_hr10_per_epoch.size(); ++e) {
    got.emplace_back("dist.val_hr10.epoch" + std::to_string(e),
                     serial.val_hr10_per_epoch[e]);
  }
  got.emplace_back("dist.best_val_hr10", serial.best_val_hr10);
  got.emplace_back("dist.best_epoch",
                   static_cast<double>(serial.best_epoch));
  got.emplace_back("dist.epochs_run",
                   static_cast<double>(serial.epochs_run));
  got.emplace_back("dist.final_train_loss",
                   static_cast<double>(serial.final_train_loss));
  // The 64-bit parameter fingerprint split into two exactly-representable
  // 32-bit halves: every final parameter bit is golden-pinned.
  got.emplace_back("dist.fingerprint.hi",
                   static_cast<double>(fp_one >> 32));
  got.emplace_back("dist.fingerprint.lo",
                   static_cast<double>(fp_one & 0xffffffffull));

  const std::string path =
      std::string(PMMREC_GOLDEN_DIR) + "/trajectory_dist.txt";
  if (RegenRequested()) {
    SaveGolden(path, got);
    GTEST_SKIP() << "golden fixture regenerated: " << path;
  }

  const Trajectory want = LoadGolden(path);
  ASSERT_FALSE(want.empty())
      << "missing golden fixture " << path
      << " — run PMMREC_GOLDEN_REGEN=1 ./tests/golden_test and commit it";
  ASSERT_EQ(got.size(), want.size())
      << "trajectory shape changed; regenerate the fixture if intentional";
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first) << "entry " << i << " renamed";
    EXPECT_EQ(got[i].second, want[i].second)
        << got[i].first << " drifted from the checked-in golden value "
        << "(regenerate with PMMREC_GOLDEN_REGEN=1 if this is intentional)";
  }
}

}  // namespace
}  // namespace pmmrec
