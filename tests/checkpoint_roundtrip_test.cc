// Checkpoint round-trip under the buffer arena: train a small model with
// the arena active (the default), save it via the module.h checkpoint API,
// load it into a freshly constructed model with a different seed, and
// require bitwise-identical evaluation scores before and after the trip.
// This pins down that arena-recycled storage never leaks stale values into
// parameters or the eval path, and that save/load is value-exact.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/generator.h"
#include "utils/arena.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

TEST(CheckpointRoundtripTest, EvalScoresBitwiseIdenticalAfterSaveLoad) {
  ASSERT_TRUE(BufferArena::Global().enabled())
      << "arena must be on (default) for this test; unset PMMREC_ARENA=0";

  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);

  // Train a couple of epochs so arena buffers really get recycled and the
  // parameters move away from their initialization.
  PMMRecModel trained(config, 42);
  FitOptions opts;
  opts.max_epochs = 2;
  opts.eval_users = 24;
  opts.seed = 7;
  const FitResult fit = FitModel(trained, ds, opts);
  ASSERT_EQ(fit.epochs_run, 2);
  EXPECT_GT(BufferArena::Global().stats().hits, 0u)
      << "training never recycled a buffer; the arena path was not exercised";

  const std::vector<int64_t> probe_users = {0, 3, 7, 11, 19};
  std::vector<std::vector<float>> scores_before;
  trained.PrepareForEval();
  for (int64_t u : probe_users) {
    scores_before.push_back(trained.ScoreItems(ds.TestPrefix(u)));
  }

  const std::string path =
      ::testing::TempDir() + "/pmmrec_roundtrip_test.ckpt";
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  // Different init seed: every parameter must come from the checkpoint,
  // not survive from construction.
  PMMRecModel loaded(config, 999);
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  loaded.AttachDataset(&ds);
  loaded.PrepareForEval();

  for (size_t p = 0; p < probe_users.size(); ++p) {
    const std::vector<float> scores_after =
        loaded.ScoreItems(ds.TestPrefix(probe_users[p]));
    ASSERT_EQ(scores_after.size(), scores_before[p].size());
    for (size_t i = 0; i < scores_after.size(); ++i) {
      ASSERT_EQ(scores_after[i], scores_before[p][i])
          << "user " << probe_users[p] << " item " << i;
    }
  }

  // And the round trip composes: save the loaded model again and check
  // the second checkpoint loads to the same scores too.
  const std::string path2 =
      ::testing::TempDir() + "/pmmrec_roundtrip_test2.ckpt";
  ASSERT_TRUE(loaded.SaveToFile(path2).ok());
  PMMRecModel loaded2(config, 1234);
  ASSERT_TRUE(loaded2.LoadFromFile(path2).ok());
  loaded2.AttachDataset(&ds);
  loaded2.PrepareForEval();
  const std::vector<float> scores2 = loaded2.ScoreItems(ds.TestPrefix(0));
  ASSERT_EQ(scores2.size(), scores_before[0].size());
  for (size_t i = 0; i < scores2.size(); ++i) {
    ASSERT_EQ(scores2[i], scores_before[0][i]) << "second trip, item " << i;
  }

  std::remove(path.c_str());
  std::remove(path2.c_str());
}

}  // namespace
}  // namespace pmmrec
