// Quantized serving (core/serving.h + the int8 GEMM in tensor/gemm.cc).
// The load-bearing claims pinned down here:
//
//  1. Quantization quality is a *property*, not a vibe: every element of
//     every row round-trips within scale/2, including degenerate rows
//     (all-zero, constant, +/-FLT_MAX, subnormal), and the quantized
//     tables are bit-identical across thread counts and kernel dispatch
//     paths.
//  2. QGemmNT agrees exactly with the reference int32 triple loop at
//     ragged shapes and non-trivial leading dimensions, and the int32
//     accumulator provably cannot wrap at the documented k bound.
//  3. End-to-end exactness: the two-stage candidate/re-rank path returns
//     scores bitwise equal to the fp32 full-table path, and the top-K it
//     induces has recall 1.0 against the fp32 top-K over the full eval
//     split — for PMMRec and for a baseline.
//
// Labelled `quant`; CI also runs this suite under PMMREC_SANITIZE=thread.

#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/id_models.h"
#include "core/pmmrec.h"
#include "core/serving.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tensor/gemm.h"
#include "utils/parallel.h"
#include "utils/rng.h"
#include "utils/topk.h"

namespace pmmrec {
namespace {

// Restores the fp32/int8 kernel dispatch on scope exit.
class KernelGuard {
 public:
  KernelGuard() : saved_(gemm::ActiveKernel()) {}
  ~KernelGuard() { gemm::SetKernel(saved_); }

 private:
  gemm::Kernel saved_;
};

// |x - scale*(q - zp)| <= scale/2 for every element. The codes are
// computed against the double-precision scale and the stored scale is its
// float rounding, so allow a relative 1e-5 on the bound — far below the
// float/double gap that would indicate a real violation.
void ExpectRoundtripWithinHalfScale(const float* rows,
                                    const QuantizedTable& qt,
                                    const std::string& what) {
  for (int64_t r = 0; r < qt.num_rows; ++r) {
    const double s = static_cast<double>(qt.scales[static_cast<size_t>(r)]);
    ASSERT_TRUE(std::isfinite(s) && s > 0.0) << what << " row " << r;
    const double zp =
        static_cast<double>(qt.zero_points[static_cast<size_t>(r)]);
    const double bound = 0.5 * s * (1.0 + 1e-5);
    for (int64_t j = 0; j < qt.width; ++j) {
      const double x = static_cast<double>(rows[r * qt.width + j]);
      const double code =
          static_cast<double>(qt.q[static_cast<size_t>(r * qt.width + j)]);
      const double err = std::fabs(x - s * (code - zp));
      ASSERT_LE(err, bound)
          << what << " row " << r << " col " << j << " x=" << x
          << " code=" << code << " scale=" << s << " zp=" << zp;
    }
  }
}

TEST(QuantizeTest, RoundtripErrorWithinHalfScaleAcrossMagnitudes) {
  constexpr int64_t kRows = 64;
  constexpr int64_t kWidth = 33;  // Not a multiple of any vector width.
  Rng rng(11);
  for (const float magnitude : {1e-6f, 1.0f, 1e3f, 1e30f}) {
    std::vector<float> rows(static_cast<size_t>(kRows * kWidth));
    for (float& v : rows) v = rng.NormalFloat(0.0f, magnitude);
    QuantizedTable qt;
    QuantizeTableRows(rows.data(), kRows, kWidth, &qt);
    EXPECT_EQ(qt.num_rows, kRows);
    EXPECT_EQ(qt.width, kWidth);
    ExpectRoundtripWithinHalfScale(rows.data(), qt,
                                   "magnitude " + std::to_string(magnitude));
  }
}

TEST(QuantizeTest, DegenerateRowsStayExactOrBounded) {
  constexpr int64_t kWidth = 17;
  // Row 0: all zero — must round-trip exactly (code == zp everywhere).
  // Row 1: positive constant. Row 2: negative constant.
  // Row 3: the extreme float range. Row 4: subnormals only.
  // Row 5: one subnormal spike in an otherwise zero row.
  constexpr int64_t kRows = 6;
  std::vector<float> rows(static_cast<size_t>(kRows * kWidth), 0.0f);
  for (int64_t j = 0; j < kWidth; ++j) {
    rows[static_cast<size_t>(1 * kWidth + j)] = 3.75f;
    rows[static_cast<size_t>(2 * kWidth + j)] = -0.625f;
    rows[static_cast<size_t>(3 * kWidth + j)] =
        (j % 2 == 0) ? FLT_MAX : -FLT_MAX;
    rows[static_cast<size_t>(4 * kWidth + j)] = 1e-41f;  // subnormal
  }
  rows[static_cast<size_t>(5 * kWidth + 3)] = -1e-40f;

  QuantizedTable qt;
  QuantizeTableRows(rows.data(), kRows, kWidth, &qt);
  ExpectRoundtripWithinHalfScale(rows.data(), qt, "degenerate");

  // The all-zero row is exact: every code equals the zero point.
  for (int64_t j = 0; j < kWidth; ++j) {
    EXPECT_EQ(qt.q[static_cast<size_t>(j)], qt.zero_points[0]);
  }
  // Scales never underflow to zero or subnormal (the error bound and the
  // dequantization identity both divide by them).
  for (int64_t r = 0; r < kRows; ++r) {
    EXPECT_TRUE(std::isnormal(qt.scales[static_cast<size_t>(r)]))
        << "row " << r;
    EXPECT_GE(qt.scales[static_cast<size_t>(r)], FLT_MIN) << "row " << r;
  }
  // bytes() reports codes + per-row parameters.
  EXPECT_EQ(qt.bytes(), static_cast<size_t>(kRows * kWidth) +
                            static_cast<size_t>(kRows) * (4 + 1 + 4));
}

TEST(QuantizeTest, NonFiniteRowsAbortAtQuantization) {
  std::vector<float> rows(8, 1.0f);
  rows[3] = std::nanf("");
  QuantizedTable qt;
  EXPECT_DEATH(QuantizeTableRows(rows.data(), 1, 8, &qt), "non-finite");
  rows[3] = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(QuantizeTableRows(rows.data(), 1, 8, &qt), "non-finite");
}

TEST(QuantizeTest, TablesBitIdenticalAcrossThreadCountsAndDispatch) {
  constexpr int64_t kRows = 300;  // > ItemTableCache::kChunk several times.
  constexpr int64_t kWidth = 32;
  Rng rng(23);
  std::vector<float> rows(static_cast<size_t>(kRows * kWidth));
  for (float& v : rows) v = rng.NormalFloat();

  QuantizedTable want;
  {
    NumThreadsGuard guard(1);
    QuantizeTableRows(rows.data(), kRows, kWidth, &want);
  }
  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    for (const gemm::Kernel kernel :
         {gemm::Kernel::kBlocked, gemm::Kernel::kReference}) {
      KernelGuard restore;
      gemm::SetKernel(kernel);
      QuantizedTable got;
      QuantizeTableRows(rows.data(), kRows, kWidth, &got);
      const std::string what =
          "threads=" + std::to_string(threads) + " kernel=" +
          (kernel == gemm::Kernel::kReference ? "reference" : "blocked");
      ASSERT_EQ(got.q.size(), want.q.size()) << what;
      EXPECT_EQ(std::memcmp(got.q.data(), want.q.data(), got.q.size()), 0)
          << what;
      EXPECT_EQ(std::memcmp(got.scales.data(), want.scales.data(),
                            got.scales.size() * sizeof(float)),
                0)
          << what;
      EXPECT_EQ(std::memcmp(got.zero_points.data(), want.zero_points.data(),
                            got.zero_points.size()),
                0)
          << what;
      EXPECT_EQ(std::memcmp(got.row_sums.data(), want.row_sums.data(),
                            got.row_sums.size() * sizeof(int32_t)),
                0)
          << what;
    }
  }
}

TEST(QuantizeTest, QueryQuantizationIsSymmetricWithConsistentSums) {
  constexpr int64_t kQueries = 5;
  constexpr int64_t kWidth = 19;
  Rng rng(31);
  std::vector<float> queries(static_cast<size_t>(kQueries * kWidth));
  for (float& v : queries) v = rng.NormalFloat();
  std::vector<int8_t> q(queries.size());
  std::vector<float> scales(kQueries);
  std::vector<int32_t> sums(kQueries);
  QuantizeQueryRows(queries.data(), kQueries, kWidth, q.data(),
                    scales.data(), sums.data());
  for (int64_t r = 0; r < kQueries; ++r) {
    int32_t sum = 0;
    for (int64_t j = 0; j < kWidth; ++j) {
      const int8_t code = q[static_cast<size_t>(r * kWidth + j)];
      EXPECT_GE(code, -127);  // Symmetric: -128 is never produced.
      sum += code;
      const double s = static_cast<double>(scales[static_cast<size_t>(r)]);
      const double x =
          static_cast<double>(queries[static_cast<size_t>(r * kWidth + j)]);
      EXPECT_LE(std::fabs(x - s * code), 0.5 * s * (1.0 + 1e-5))
          << "row " << r << " col " << j;
    }
    EXPECT_EQ(sum, sums[static_cast<size_t>(r)]) << "row " << r;
  }
}

// Naive local int32 loop, independent of the library's kernels.
void NaiveQGemmNT(const int8_t* a, const int8_t* b, int32_t* c, int64_t m,
                  int64_t k, int64_t n, int64_t lda, int64_t ldb,
                  int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t dot = 0;
      for (int64_t p = 0; p < k; ++p) {
        dot += static_cast<int32_t>(a[i * lda + p]) *
               static_cast<int32_t>(b[j * ldb + p]);
      }
      c[i * ldc + j] += dot;
    }
  }
}

TEST(QGemmTest, MatchesReferenceLoopAtRaggedShapes) {
  Rng rng(41);
  const int64_t sizes[] = {1, 3, 17, 64, 129};
  for (const int64_t m : sizes) {
    for (const int64_t n : sizes) {
      for (const int64_t k : sizes) {
        std::vector<int8_t> a(static_cast<size_t>(m * k));
        std::vector<int8_t> b(static_cast<size_t>(n * k));
        for (int8_t& v : a) {
          v = static_cast<int8_t>(rng.UniformInt(-128, 128));
        }
        for (int8_t& v : b) {
          v = static_cast<int8_t>(rng.UniformInt(-128, 128));
        }
        // Accumulate semantics: start from a shared non-zero C.
        std::vector<int32_t> base(static_cast<size_t>(m * n));
        for (int32_t& v : base) {
          v = static_cast<int32_t>(rng.UniformInt(-1000, 1000));
        }
        std::vector<int32_t> want = base;
        NaiveQGemmNT(a.data(), b.data(), want.data(), m, k, n, k, k, n);

        for (const gemm::Kernel kernel :
             {gemm::Kernel::kBlocked, gemm::Kernel::kReference}) {
          KernelGuard restore;
          gemm::SetKernel(kernel);
          std::vector<int32_t> got = base;
          gemm::QGemmNT(a.data(), b.data(), got.data(), m, k, n, k, k, n);
          ASSERT_EQ(std::memcmp(got.data(), want.data(),
                                got.size() * sizeof(int32_t)),
                    0)
              << "m=" << m << " n=" << n << " k=" << k << " kernel="
              << (kernel == gemm::Kernel::kReference ? "reference"
                                                     : "dispatched");
        }
      }
    }
  }
}

TEST(QGemmTest, HonorsLeadingDimensions) {
  Rng rng(43);
  constexpr int64_t m = 5, n = 23, k = 33;
  constexpr int64_t lda = 40, ldb = 48, ldc = 30;
  std::vector<int8_t> a(static_cast<size_t>(m * lda));
  std::vector<int8_t> b(static_cast<size_t>(n * ldb));
  for (int8_t& v : a) v = static_cast<int8_t>(rng.UniformInt(-128, 128));
  for (int8_t& v : b) v = static_cast<int8_t>(rng.UniformInt(-128, 128));
  std::vector<int32_t> want(static_cast<size_t>(m * ldc), 7);
  std::vector<int32_t> got = want;
  NaiveQGemmNT(a.data(), b.data(), want.data(), m, k, n, lda, ldb, ldc);
  gemm::QGemmNT(a.data(), b.data(), got.data(), m, k, n, lda, ldb, ldc);
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(int32_t)),
            0);
  // Padding past n within the leading dimension is untouched.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = n; j < ldc; ++j) {
      EXPECT_EQ(got[static_cast<size_t>(i * ldc + j)], 7)
          << "wrote past n at (" << i << "," << j << ")";
    }
  }
}

TEST(QGemmTest, AccumulatorCannotWrapAtTheDocumentedBound) {
  // Worst-case magnitude product is 127 * -128 = -16256; at the maximum
  // legal reduction length the exact dot is 65536 * -16256 = -1065353216,
  // well inside int32. The kernel must reproduce it exactly.
  const int64_t k = gemm::kQMaxK;
  std::vector<int8_t> a(static_cast<size_t>(k), int8_t{127});
  std::vector<int8_t> b(static_cast<size_t>(k), int8_t{-128});
  int32_t c = 0;
  gemm::QGemmNT(a.data(), b.data(), &c, 1, k, 1, k, k, 1);
  EXPECT_EQ(c, -1065353216);
}

TEST(QuantCandidateTest, RerankedScoresAreBitwiseTheFp32Scores) {
  constexpr int64_t kItems = 500;
  constexpr int64_t kWidth = 32;
  constexpr int64_t kQueries = 7;
  Rng rng(53);
  std::vector<float> table(static_cast<size_t>(kItems * kWidth));
  std::vector<float> queries(static_cast<size_t>(kQueries * kWidth));
  for (float& v : table) v = rng.NormalFloat();
  for (float& v : queries) v = rng.NormalFloat();

  QuantizedTable qt;
  QuantizeTableRows(table.data(), kItems, kWidth, &qt);

  // fp32 reference rows via the same GEMM family the re-rank uses; the
  // determinism contract makes per-element results comparable bitwise.
  std::vector<float> full(static_cast<size_t>(kQueries * kItems), 0.0f);
  gemm::GemmNT(queries.data(), table.data(), full.data(), kQueries, kWidth,
               kItems, kWidth, kWidth, kItems);

  for (const int64_t window : {int64_t{64}, kItems}) {
    const std::vector<std::vector<ScoredId>> got = QuantCandidateTopK(
        qt, table.data(), queries.data(), kQueries, window);
    ASSERT_EQ(got.size(), static_cast<size_t>(kQueries));
    for (int64_t r = 0; r < kQueries; ++r) {
      const std::vector<ScoredId>& ranked = got[static_cast<size_t>(r)];
      ASSERT_EQ(ranked.size(), static_cast<size_t>(window));
      const float* row = full.data() + r * kItems;
      for (size_t c = 0; c < ranked.size(); ++c) {
        ASSERT_GE(ranked[c].id, 0);
        ASSERT_LT(ranked[c].id, kItems);
        ASSERT_EQ(std::memcmp(&ranked[c].score, &row[ranked[c].id],
                              sizeof(float)),
                  0)
            << "window=" << window << " query=" << r << " pos=" << c
            << ": re-ranked score is not the fp32 score";
        if (c > 0) {
          EXPECT_TRUE(!RanksBefore(ranked[c], ranked[c - 1]))
              << "window=" << window << " query=" << r
              << ": presentation order violated at " << c;
        }
      }
    }
  }

  // Full-window candidates induce exactly the fp32 top-K.
  const std::vector<std::vector<ScoredId>> all = QuantCandidateTopK(
      qt, table.data(), queries.data(), kQueries, kItems);
  for (int64_t r = 0; r < kQueries; ++r) {
    const std::vector<ScoredId> want =
        TopKSelect(full.data() + r * kItems, kItems, 10);
    const std::vector<ScoredId> top =
        TopKFromRanked(all[static_cast<size_t>(r)], 10);
    ASSERT_EQ(top.size(), want.size());
    for (size_t c = 0; c < want.size(); ++c) {
      EXPECT_EQ(top[c].id, want[c].id) << "query " << r << " pos " << c;
      EXPECT_EQ(std::memcmp(&top[c].score, &want[c].score, sizeof(float)), 0)
          << "query " << r << " pos " << c;
    }
  }
}

TEST(QuantCandidateTest, ResultsBitIdenticalAcrossThreadsAndDispatch) {
  constexpr int64_t kItems = 257;
  constexpr int64_t kWidth = 24;
  constexpr int64_t kQueries = 4;
  constexpr int64_t kWindow = 50;
  Rng rng(59);
  std::vector<float> table(static_cast<size_t>(kItems * kWidth));
  std::vector<float> queries(static_cast<size_t>(kQueries * kWidth));
  for (float& v : table) v = rng.NormalFloat();
  for (float& v : queries) v = rng.NormalFloat();
  QuantizedTable qt;
  QuantizeTableRows(table.data(), kItems, kWidth, &qt);

  const std::vector<std::vector<ScoredId>> want = QuantCandidateTopK(
      qt, table.data(), queries.data(), kQueries, kWindow);
  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    for (const gemm::Kernel kernel :
         {gemm::Kernel::kBlocked, gemm::Kernel::kReference}) {
      KernelGuard restore;
      gemm::SetKernel(kernel);
      const std::vector<std::vector<ScoredId>> got = QuantCandidateTopK(
          qt, table.data(), queries.data(), kQueries, kWindow);
      for (size_t r = 0; r < want.size(); ++r) {
        ASSERT_EQ(got[r].size(), want[r].size());
        for (size_t c = 0; c < want[r].size(); ++c) {
          ASSERT_EQ(got[r][c].id, want[r][c].id);
          ASSERT_EQ(std::memcmp(&got[r][c].score, &want[r][c].score,
                                sizeof(float)),
                    0)
              << "threads=" << threads << " query=" << r << " pos=" << c;
        }
      }
    }
  }
}

TEST(QuantConfigTest, EffectiveRerankWindowResolvesAutoAndValidates) {
  EXPECT_EQ(EffectiveRerankWindow(0, 100), 100);
  EXPECT_EQ(EffectiveRerankWindow(0, 100000), kDefaultRerankWindow);
  EXPECT_EQ(EffectiveRerankWindow(64, 100), 64);
  EXPECT_EQ(EffectiveRerankWindow(100, 100), 100);
}

TEST(QuantConfigTest, EnvVarGatesTheServingPath) {
  // The suite never exports PMMREC_QUANT, so mutate-and-restore is safe.
  unsetenv("PMMREC_QUANT");
  EXPECT_FALSE(QuantServingEnvEnabled());
  setenv("PMMREC_QUANT", "0", 1);
  EXPECT_FALSE(QuantServingEnvEnabled());
  setenv("PMMREC_QUANT", "1", 1);
  EXPECT_TRUE(QuantServingEnvEnabled());
  unsetenv("PMMREC_QUANT");
  EXPECT_FALSE(QuantServingEnvEnabled());
}

// --- End-to-end exactness over a real model + dataset -----------------------

class QuantE2ETest : public ::testing::Test {
 protected:
  QuantE2ETest()
      : suite_(BuildBenchmarkSuite(0.2, 13)),
        ds_(suite_.sources[0]),
        config_(PMMRecConfig::FromDataset(ds_)),
        model_(config_, 42) {
    model_.AttachDataset(&ds_);
  }

  static void ExpectBitwise(const std::vector<ScoredId>& got,
                            const std::vector<ScoredId>& want,
                            const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << what << " position " << i;
      EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
          << what << " position " << i;
    }
  }

  BenchmarkSuite suite_;
  const Dataset& ds_;
  PMMRecConfig config_;
  PMMRecModel model_;
};

TEST_F(QuantE2ETest, CandidateScoresBitwiseMatchScoreUsersBatched) {
  const int64_t n_items = ds_.num_items();
  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < std::min<int64_t>(24, ds_.num_users()); ++u) {
    std::vector<int32_t> p = ds_.TestPrefix(u);
    p.resize(1 + static_cast<size_t>(u) % p.size());
    prefixes.push_back(std::move(p));
  }
  std::vector<float> full(prefixes.size() * static_cast<size_t>(n_items));
  model_.ScoreUsersBatched(prefixes, full.data());

  const std::vector<std::vector<ScoredId>> candidates =
      model_.ScoreUsersCandidates(prefixes, /*window=*/0);
  ASSERT_EQ(candidates.size(), prefixes.size());
  for (size_t u = 0; u < prefixes.size(); ++u) {
    const float* row = full.data() + u * static_cast<size_t>(n_items);
    ASSERT_FALSE(candidates[u].empty()) << "user " << u;
    for (const ScoredId& c : candidates[u]) {
      ASSERT_EQ(std::memcmp(&c.score, &row[c.id], sizeof(float)), 0)
          << "user " << u << " item " << c.id
          << ": candidate score is not bitwise the fp32 score";
    }
  }
}

TEST_F(QuantE2ETest, RecallAtKIsOneOverTheFullEvalSplit) {
  constexpr int64_t kTopK = 10;
  // The production auto window (min(kDefaultRerankWindow, n_items)); at
  // this dataset scale it covers the catalogue, so served top-K equality
  // is guaranteed, not merely empirical.
  const int64_t window =
      std::min<int64_t>(ds_.num_items(), kDefaultRerankWindow);
  const int64_t n_items = ds_.num_items();

  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < ds_.num_users(); ++u) {
    prefixes.push_back(ds_.TestPrefix(u));
  }
  std::vector<float> full(prefixes.size() * static_cast<size_t>(n_items));
  model_.ScoreUsersBatched(prefixes, full.data());
  const std::vector<std::vector<ScoredId>> candidates =
      model_.ScoreUsersCandidates(prefixes, window);

  int64_t hits = 0, total = 0;
  for (size_t u = 0; u < prefixes.size(); ++u) {
    const std::vector<ScoredId> want = TopKSelect(
        full.data() + u * static_cast<size_t>(n_items), n_items, kTopK,
        prefixes[u]);
    const std::vector<ScoredId> got =
        TopKFromRanked(candidates[u], kTopK, prefixes[u]);
    ExpectBitwise(got, want, "user " + std::to_string(u));
    total += static_cast<int64_t>(want.size());
    for (size_t i = 0; i < std::min(got.size(), want.size()); ++i) {
      if (got[i].id == want[i].id) ++hits;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_EQ(hits, total) << "recall@" << kTopK << " = "
                         << static_cast<double>(hits) /
                                static_cast<double>(total)
                         << " != 1.0";
}

TEST_F(QuantE2ETest, BaselineCandidatesBitwiseMatchSerialScoring) {
  SasRec sasrec(ds_.num_items(), config_.d_model, config_.max_seq_len, 7);
  sasrec.AttachDataset(&ds_);
  sasrec.SetQuantizedServing(true);
  EXPECT_TRUE(sasrec.QuantServingEnabled());
  constexpr int64_t kTopK = 10;
  const int64_t n_items = ds_.num_items();

  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < std::min<int64_t>(40, ds_.num_users()); ++u) {
    prefixes.push_back(ds_.TestPrefix(u));
  }
  const std::vector<std::vector<ScoredId>> candidates =
      sasrec.ScoreUsersCandidates(prefixes, /*window=*/n_items);
  for (size_t u = 0; u < prefixes.size(); ++u) {
    const std::vector<float> serial = sasrec.ScoreItems(prefixes[u]);
    const std::vector<ScoredId> want =
        TopKSelect(serial.data(), n_items, kTopK, prefixes[u]);
    const std::vector<ScoredId> got =
        TopKFromRanked(candidates[u], kTopK, prefixes[u]);
    ExpectBitwise(got, want, "sasrec user " + std::to_string(u));
  }
}

TEST_F(QuantE2ETest, CandidatesBitIdenticalAcrossThreadCounts) {
  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < 16; ++u) {
    prefixes.push_back(ds_.TestPrefix(u % ds_.num_users()));
  }
  std::vector<std::vector<ScoredId>> want;
  {
    NumThreadsGuard guard(1);
    model_.SetTrainingMode(true);  // Force a 1-thread rebuild.
    want = model_.ScoreUsersCandidates(prefixes, /*window=*/64);
  }
  {
    NumThreadsGuard guard(4);
    model_.SetTrainingMode(true);  // Force a 4-thread rebuild.
    const std::vector<std::vector<ScoredId>> got =
        model_.ScoreUsersCandidates(prefixes, /*window=*/64);
    ASSERT_EQ(got.size(), want.size());
    for (size_t u = 0; u < want.size(); ++u) {
      ExpectBitwise(got[u], want[u], "user " + std::to_string(u));
    }
  }
}

TEST_F(QuantE2ETest, ParamUpdateInvalidatesAndRebuildsQuantizedTable) {
  (void)model_.ScoreUsersCandidates(
      std::vector<std::vector<int32_t>>{ds_.TestPrefix(0)}, 16);
  const uint64_t rebuilds = model_.item_table_cache().rebuilds();
  ASSERT_TRUE(model_.item_table_cache().valid());
  ASSERT_TRUE(model_.item_table_cache().quantization_enabled());

  BumpParamUpdateVersion();
  EXPECT_FALSE(model_.item_table_cache().valid());

  // Scoring re-ensures: exactly one more rebuild, then exact results again.
  const std::vector<std::vector<int32_t>> prefixes{ds_.TestPrefix(1)};
  const std::vector<std::vector<ScoredId>> candidates =
      model_.ScoreUsersCandidates(prefixes, ds_.num_items());
  EXPECT_EQ(model_.item_table_cache().rebuilds(), rebuilds + 1);

  const std::vector<float> serial = model_.ScoreItems(ds_.TestPrefix(1));
  EXPECT_EQ(model_.item_table_cache().rebuilds(), rebuilds + 1);
  const std::vector<ScoredId> want =
      TopKSelect(serial.data(), ds_.num_items(), 10);
  ExpectBitwise(TopKFromRanked(candidates[0], 10), want, "post-update");
}

TEST_F(QuantE2ETest, ConfigAndEnvBothRouteTheQuantPath) {
  EXPECT_FALSE(model_.QuantServingEnabled());
  setenv("PMMREC_QUANT", "1", 1);
  EXPECT_TRUE(model_.QuantServingEnabled());
  setenv("PMMREC_QUANT", "0", 1);
  EXPECT_FALSE(model_.QuantServingEnabled());
  unsetenv("PMMREC_QUANT");

  PMMRecConfig config = config_;
  config.quantized_serving = true;
  PMMRecModel flagged(config, 42);
  flagged.AttachDataset(&ds_);
  EXPECT_TRUE(flagged.QuantServingEnabled());
}

}  // namespace
}  // namespace pmmrec
