// Regression tests for the logger's thread-safety contract (utils/logging):
// every PMM_LOG line is emitted with a single stdio write, so lines from
// concurrent threads never tear or interleave mid-line. The hammer test
// redirects stderr to a file, logs from 8 threads at once, and then checks
// every captured line is whole and every (thread, sequence) pair arrived
// exactly once. The tsan build re-runs this with race detection on.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "utils/logging.h"

namespace pmmrec {
namespace {

// Redirects the stderr file descriptor to a file for the guard's lifetime.
// fd-level (dup2), not stream-level, so it captures exactly what stdio
// writes regardless of buffering mode.
class StderrCapture {
 public:
  explicit StderrCapture(const std::string& path) {
    std::fflush(stderr);
    saved_fd_ = dup(fileno(stderr));
    const int fd = open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    EXPECT_GE(fd, 0) << path;
    dup2(fd, fileno(stderr));
    close(fd);
  }
  ~StderrCapture() { Restore(); }

  void Restore() {
    if (saved_fd_ < 0) return;
    std::fflush(stderr);
    dup2(saved_fd_, fileno(stderr));
    close(saved_fd_);
    saved_fd_ = -1;
  }

  StderrCapture(const StderrCapture&) = delete;
  StderrCapture& operator=(const StderrCapture&) = delete;

 private:
  int saved_fd_ = -1;
};

std::vector<std::string> ReadLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  if (f != nullptr) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
    std::fclose(f);
  }
  std::vector<std::string> lines;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // A torn trailing write would show up as a line without '\n'; getline
  // still returns it and the format check below rejects it.
  return lines;
}

TEST(LoggingTest, PrefixFormatAndLevelFilter) {
  const std::string path = ::testing::TempDir() + "/pmmrec_log_fmt.txt";
  {
    StderrCapture capture(path);
    PMM_LOG(Info) << "hello " << 42;
    PMM_LOG(Debug) << "suppressed at default min level";
    LogMessage::SetMinLevel(LogLevel::kError);
    PMM_LOG(Warning) << "suppressed by SetMinLevel";
    PMM_LOG(Error) << "boom";
    LogMessage::SetMinLevel(LogLevel::kInfo);
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[I] hello 42");
  EXPECT_EQ(lines[1], "[E] boom");
  std::remove(path.c_str());
}

TEST(LoggingTest, EightThreadsProduceNoTornLines) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  // Payload character is distinct per thread, so any mid-line interleaving
  // of two writers is detectable as a mixed-character run.
  constexpr int kPayloadLen = 64;

  const std::string path = ::testing::TempDir() + "/pmmrec_log_hammer.txt";
  {
    StderrCapture capture(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        const std::string payload(kPayloadLen, static_cast<char>('a' + t));
        for (int i = 0; i < kLinesPerThread; ++i) {
          PMM_LOG(Info) << "hammer t" << t << " i" << i << " " << payload;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kLinesPerThread));
  std::map<std::pair<int, int>, int> seen;  // (thread, seq) -> count
  for (const std::string& line : lines) {
    int t = -1, i = -1;
    char payload[kPayloadLen + 2] = {0};
    // Whole-line shape: prefix, ids, payload — nothing before or after.
    const int matched =
        std::sscanf(line.c_str(), "[I] hammer t%d i%d %65s", &t, &i, payload);
    ASSERT_EQ(matched, 3) << "torn or foreign line: " << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kLinesPerThread);
    const std::string expected(kPayloadLen, static_cast<char>('a' + t));
    ASSERT_EQ(std::string(payload), expected) << "torn payload: " << line;
    ASSERT_EQ(line.size(), std::string("[I] hammer t i ").size() +
                               std::to_string(t).size() +
                               std::to_string(i).size() + kPayloadLen)
        << "trailing garbage: " << line;
    ++seen[{t, i}];
  }
  // Every line arrived exactly once — no duplicates, no losses.
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kLinesPerThread));
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "t" << key.first << " i" << key.second;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pmmrec
