// Multi-process substrate tests (src/dist/): the per-rank thread budget,
// the shared-memory barrier, the SOCK_SEQPACKET framing contract, and the
// headline determinism claim of the data-parallel fit — the trajectory is
// a pure function of the gradient shard count, never of the worker
// count, so (workers=1, shards=S) and (workers=W, shards=S) are bitwise
// identical down to every parameter bit.
//
// Labelled `scaleout`.

#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "dist/process.h"
#include "dist/shm.h"
#include "dist/transport.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

// --- Thread budget -----------------------------------------------------------

TEST(ThreadBudgetTest, DividesEvenly) {
  for (int64_t rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(dist::ThreadBudget(8, 4, rank), 2) << "rank " << rank;
  }
}

TEST(ThreadBudgetTest, RemainderGoesToLowRanks) {
  EXPECT_EQ(dist::ThreadBudget(7, 4, 0), 2);
  EXPECT_EQ(dist::ThreadBudget(7, 4, 1), 2);
  EXPECT_EQ(dist::ThreadBudget(7, 4, 2), 2);
  EXPECT_EQ(dist::ThreadBudget(7, 4, 3), 1);
}

TEST(ThreadBudgetTest, TotalAcrossRanksNeverExceedsTotalWhenFeasible) {
  for (int64_t total = 1; total <= 16; ++total) {
    for (int64_t workers = 1; workers <= 6; ++workers) {
      int64_t sum = 0;
      for (int64_t rank = 0; rank < workers; ++rank) {
        const int64_t budget = dist::ThreadBudget(total, workers, rank);
        EXPECT_GE(budget, 1);
        sum += budget;
      }
      if (total >= workers) {
        EXPECT_LE(sum, total) << "total=" << total << " workers=" << workers;
        EXPECT_EQ(sum, total) << "budget should not waste threads";
      } else {
        // Infeasible split: every rank still gets its floor of one.
        EXPECT_EQ(sum, workers);
      }
    }
  }
}

TEST(ThreadBudgetTest, EnvOverrideWins) {
  ASSERT_EQ(setenv("PMMREC_DIST_THREADS", "3", 1), 0);
  EXPECT_EQ(dist::ThreadBudget(16, 4, 0), 3);
  EXPECT_EQ(dist::ThreadBudget(1, 1, 0), 3);
  ASSERT_EQ(setenv("PMMREC_DIST_THREADS", "garbage", 1), 0);
  EXPECT_EQ(dist::ThreadBudget(8, 4, 1), 2);  // Unparsable -> computed split.
  ASSERT_EQ(unsetenv("PMMREC_DIST_THREADS"), 0);
  EXPECT_EQ(dist::ThreadBudget(8, 4, 1), 2);
}

// --- Shared-memory barrier ---------------------------------------------------

TEST(ShmBarrierTest, ThreadsRendezvousAcrossManyRounds) {
  dist::ShmBarrierState state;
  constexpr int kParties = 3;
  constexpr int kRounds = 200;
  std::atomic<int64_t> checksum{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      dist::ShmBarrier barrier(&state, kParties);
      for (int r = 0; r < kRounds; ++r) {
        checksum.fetch_add(1);
        if (!barrier.Wait()) {
          ok = false;
          return;
        }
        // After the barrier every party of round r has contributed.
        if (checksum.load() < (r + 1) * kParties) ok = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(checksum.load(), kParties * kRounds);
}

TEST(ShmBarrierTest, AbortUnblocksWaiters) {
  dist::ShmBarrierState state;
  dist::ShmBarrier barrier(&state, 2);
  std::thread waiter([&] { EXPECT_FALSE(barrier.Wait()); });
  barrier.SignalAbort();
  waiter.join();
  // Sticky: future waits fail immediately too.
  EXPECT_FALSE(barrier.Wait());
}

TEST(ShmBarrierTest, PeerDeadProbeAbortsTheBarrier) {
  dist::ShmBarrierState state;
  dist::ShmBarrier barrier(&state, 2);
  EXPECT_FALSE(barrier.Wait([] { return true; }));
  EXPECT_TRUE(barrier.aborted());
}

// --- Transport framing contract ----------------------------------------------

TEST(TransportTest, FrameRoundTripPreservesEveryField) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  dist::Frame sent;
  sent.type = dist::FrameType::kResponse;
  sent.request_id = 0x1122334455667788ull;
  sent.deadline_ns = 987654321;
  sent.payload = {1, 2, 3, 250, 251, 252};
  ASSERT_EQ(a.Send(sent), dist::ChannelStatus::kOk);
  dist::Frame got;
  ASSERT_EQ(b.Recv(&got), dist::ChannelStatus::kOk);
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.request_id, sent.request_id);
  EXPECT_EQ(got.deadline_ns, sent.deadline_ns);
  EXPECT_EQ(got.payload, sent.payload);
}

TEST(TransportTest, EmptyPayloadRoundTrips) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  dist::Frame sent;
  sent.type = dist::FrameType::kTelemetry;
  ASSERT_EQ(a.Send(sent), dist::ChannelStatus::kOk);
  dist::Frame got;
  ASSERT_EQ(b.Recv(&got), dist::ChannelStatus::kOk);
  EXPECT_TRUE(got.payload.empty());
}

TEST(TransportTest, TruncatedHeaderIsBadFrameNotHang) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  const uint32_t magic = dist::Channel::kMagic;
  ASSERT_TRUE(a.SendRaw(&magic, sizeof(magic)));  // 4 bytes < header.
  dist::Frame got;
  EXPECT_EQ(b.Recv(&got), dist::ChannelStatus::kBadFrame);
}

TEST(TransportTest, GarbageMagicIsBadFrame) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  dist::WireHeader header;
  header.magic = 0xdeadbeef;
  header.type = 1;
  header.payload_len = 0;
  ASSERT_TRUE(a.SendRaw(&header, sizeof(header)));
  dist::Frame got;
  EXPECT_EQ(b.Recv(&got), dist::ChannelStatus::kBadFrame);
}

TEST(TransportTest, OversizedLengthPrefixIsBadFrame) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  dist::WireHeader header;
  header.magic = dist::Channel::kMagic;
  header.type = 1;
  header.payload_len =
      static_cast<uint32_t>(dist::Channel::kMaxPayload) + 1;
  ASSERT_TRUE(a.SendRaw(&header, sizeof(header)));
  dist::Frame got;
  EXPECT_EQ(b.Recv(&got), dist::ChannelStatus::kBadFrame);
}

TEST(TransportTest, LyingLengthPrefixIsBadFrame) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  dist::WireHeader header;
  header.magic = dist::Channel::kMagic;
  header.type = 1;
  header.payload_len = 100;  // Claims 100 payload bytes; sends none.
  ASSERT_TRUE(a.SendRaw(&header, sizeof(header)));
  dist::Frame got;
  EXPECT_EQ(b.Recv(&got), dist::ChannelStatus::kBadFrame);
}

TEST(TransportTest, ClosedPeerIsPeerDead) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  a.Close();
  dist::Frame got;
  EXPECT_EQ(b.Recv(&got), dist::ChannelStatus::kPeerDead);
  dist::Frame frame;
  EXPECT_EQ(b.Send(frame), dist::ChannelStatus::kPeerDead);
}

TEST(TransportTest, PeerProcessDeathIsPeerDeadAfterDrain) {
  dist::Channel a, b;
  dist::Channel::CreatePair(&a, &b);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: one good frame, then die without closing anything in an
    // orderly way — the kernel closes the inherited fds.
    dist::Frame frame;
    frame.type = dist::FrameType::kRequest;
    frame.request_id = 7;
    frame.payload = {42};
    b.Send(frame);
    _exit(0);
  }
  b.Close();  // Drop the parent's copy so EOF is observable.
  dist::Frame got;
  ASSERT_EQ(a.Recv(&got), dist::ChannelStatus::kOk);
  EXPECT_EQ(got.request_id, 7u);
  // The queued datagram is delivered first; then the dead peer surfaces.
  EXPECT_EQ(a.Recv(&got), dist::ChannelStatus::kPeerDead);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// --- Data-parallel fit -------------------------------------------------------

FitOptions SmallFit() {
  FitOptions fit;
  fit.max_epochs = 2;
  fit.batch_size = 8;
  fit.max_seq_len = 10;
  fit.eval_users = 40;
  fit.patience = 2;
  fit.seed = 7;
  return fit;
}

std::vector<float> FlatParams(PMMRecModel& model) {
  auto params = model.TrainableParameters();
  std::vector<float> flat(static_cast<size_t>(TotalParamNumel(params)));
  CopyParamsToFlat(params, flat.data());
  return flat;
}

void ExpectSameTrajectory(const FitResult& a, const FitResult& b) {
  ASSERT_EQ(a.val_hr10_per_epoch.size(), b.val_hr10_per_epoch.size());
  for (size_t e = 0; e < a.val_hr10_per_epoch.size(); ++e) {
    EXPECT_EQ(a.val_hr10_per_epoch[e], b.val_hr10_per_epoch[e])
        << "epoch " << e;
  }
  EXPECT_EQ(a.best_val_hr10, b.best_val_hr10);
  EXPECT_EQ(a.best_epoch, b.best_epoch);
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
}

TEST(DataParallelFitTest, SingleWorkerSingleShardIsPlainFitBitwise) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  const FitOptions fit = SmallFit();

  PMMRecModel plain(config, 42);
  plain.AttachDataset(&ds);
  const FitResult plain_result = FitModel(plain, ds, fit);

  PMMRecModel dist_model(config, 42);
  dist_model.AttachDataset(&ds);
  const FitResult dist_result =
      dist::RunDataParallelFit(dist_model, ds, fit, /*workers=*/1,
                               /*grad_shards=*/1);

  ExpectSameTrajectory(plain_result, dist_result);
  const std::vector<float> a = FlatParams(plain);
  const std::vector<float> b = FlatParams(dist_model);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << "workers=1 shards=1 must leave the historical path bitwise intact";
}

TEST(DataParallelFitTest, TrajectoryIsAFunctionOfShardsNotWorkers) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  const FitOptions fit = SmallFit();

  // (workers=1, shards=2): the in-process reducer computes every shard.
  PMMRecModel one(config, 42);
  one.AttachDataset(&ds);
  const FitResult one_result =
      dist::RunDataParallelFit(one, ds, fit, /*workers=*/1, /*grad_shards=*/2);

  // (workers=2, shards=0 -> 2): two forked ranks over shared memory.
  PMMRecModel two(config, 42);
  two.AttachDataset(&ds);
  const FitResult two_result =
      dist::RunDataParallelFit(two, ds, fit, /*workers=*/2, /*grad_shards=*/0);

  ExpectSameTrajectory(one_result, two_result);
  const std::vector<float> a = FlatParams(one);
  const std::vector<float> b = FlatParams(two);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << "2-process fit diverged bitwise from the 1-process fit at equal "
         "shard count";
  EXPECT_EQ(dist::FitFingerprint(one_result, one.TrainableParameters()),
            dist::FitFingerprint(two_result, two.TrainableParameters()));
}

TEST(DataParallelFitTest, ParentThreadSettingSurvivesTheFit) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  FitOptions fit = SmallFit();
  fit.max_epochs = 1;
  fit.eval_users = 16;

  NumThreadsGuard guard(3);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);
  dist::RunDataParallelFit(model, ds, fit, /*workers=*/2);
  // The parent lowers its own budget to its rank-0 share during the fit
  // (so ranks collectively stay within the total) and must restore it.
  EXPECT_EQ(GetNumThreads(), 3);
}

}  // namespace
}  // namespace pmmrec
