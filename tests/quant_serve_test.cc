// The quantized serving path through the request broker. The claims:
//
//  1. With quantized serving enabled, every broker response is bitwise
//     identical to the fp32 serial reference (ScoreItems + TopKSelect),
//     for every tested combination of worker count, intra-op thread
//     count, and coalescing policy — the int8 candidate stage never
//     shows in a response.
//  2. Duplicate merging, history exclusion and the stats surface behave
//     exactly as on the fp32 path, plus quant_batches advances.
//  3. The one-rebuild-per-param-update protocol covers the quantized
//     table: an optimizer step under concurrent client load triggers
//     exactly one rebuild (fp32 + int8 together) and every response
//     matches the post-update reference.
//
// Labelled `quant`; CI also runs this suite under PMMREC_SANITIZE=thread.

#include <atomic>
#include <cstring>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "serve/broker.h"
#include "tests/test_util.h"
#include "utils/parallel.h"
#include "utils/topk.h"

namespace pmmrec {
namespace {

using serve::BrokerOptions;
using serve::BrokerStats;
using serve::Request;
using serve::RequestBroker;
using serve::Response;
using serve::ServeStatus;
using test::ExpectBitwise;

class QuantServeTest : public test::SmallModelTest {
 protected:
  QuantServeTest()
      : SmallModelTest([](PMMRecConfig& c) {
          c.quantized_serving = true;  // Route the broker's quant branch.
        }) {}
};

TEST_F(QuantServeTest, ResponsesBitwiseEqualFp32AcrossWorkersAndPolicies) {
  constexpr int64_t kTopK = 10;
  ASSERT_TRUE(model_.QuantServingEnabled());
  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(24);
  std::vector<std::vector<ScoredId>> want;
  {
    NumThreadsGuard guard(1);
    for (const auto& prefix : prefixes) {
      want.push_back(SerialReference(prefix, kTopK));
    }
  }

  struct Policy {
    int64_t max_batch;
    int64_t max_wait_us;
  };
  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    for (const int64_t workers : {int64_t{1}, int64_t{4}}) {
      for (const Policy policy : {Policy{1, 0}, Policy{16, 500}}) {
        BrokerOptions options;
        options.num_workers = workers;
        options.max_batch = policy.max_batch;
        options.max_wait_us = policy.max_wait_us;
        options.queue_capacity = 64;
        RequestBroker broker(&model_, options);

        std::vector<std::future<Response>> futures;
        for (const auto& prefix : prefixes) {
          Request request;
          request.prefix = prefix;
          request.topk = kTopK;
          futures.push_back(broker.Submit(std::move(request)));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
          const Response response = futures[i].get();
          const std::string what =
              "threads=" + std::to_string(threads) +
              " workers=" + std::to_string(workers) +
              " max_batch=" + std::to_string(policy.max_batch) +
              " request=" + std::to_string(i);
          ASSERT_EQ(response.status, ServeStatus::kOk) << what;
          ExpectBitwise(response.items, want[i], what);
        }
        const BrokerStats stats = broker.stats();
        EXPECT_GT(stats.quant_batches, 0u)
            << "quant branch never taken despite quantized_serving=true";
        EXPECT_EQ(stats.quant_batches, stats.batches)
            << "some batches fell back to the fp32 branch";
      }
    }
  }
}

TEST_F(QuantServeTest, DuplicateMergingStaysBitwiseExact) {
  constexpr int64_t kTopK = 7;
  const std::vector<int32_t> prefix = ds_.TestPrefix(3);
  const std::vector<ScoredId> want = SerialReference(prefix, kTopK);

  for (const bool merge : {true, false}) {
    BrokerOptions options;
    options.num_workers = 1;
    options.max_batch = 8;
    options.max_wait_us = 200;
    options.merge_duplicates = merge;
    RequestBroker broker(&model_, options);

    broker.Pause();
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 6; ++i) {
      Request request;
      request.prefix = prefix;
      request.topk = kTopK;
      futures.push_back(broker.Submit(std::move(request)));
    }
    broker.Resume();
    for (auto& future : futures) {
      const Response response = future.get();
      ASSERT_EQ(response.status, ServeStatus::kOk);
      ExpectBitwise(response.items, want, merge ? "merge=on" : "merge=off");
    }
    const BrokerStats stats = broker.stats();
    if (merge) {
      EXPECT_GT(stats.merged_requests, 0u);
    } else {
      EXPECT_EQ(stats.merged_requests, 0u);
    }
  }
}

TEST_F(QuantServeTest, HistoryExclusionMatchesFp32Semantics) {
  constexpr int64_t kTopK = 10;
  const std::vector<int32_t> prefix = ds_.TestPrefix(5);

  for (const bool exclude : {true, false}) {
    BrokerOptions options;
    options.num_workers = 1;
    options.exclude_history = exclude;
    RequestBroker broker(&model_, options);
    const Response response = broker.Recommend(prefix, kTopK);
    ASSERT_EQ(response.status, ServeStatus::kOk);

    const std::vector<float> scores = model_.ScoreItems(prefix);
    const std::vector<ScoredId> want = TopKSelect(
        scores.data(), static_cast<int64_t>(scores.size()), kTopK,
        exclude ? std::span<const int32_t>(prefix)
                : std::span<const int32_t>());
    ExpectBitwise(response.items, want,
                  exclude ? "exclude=on" : "exclude=off");
    if (exclude) {
      for (const ScoredId& item : response.items) {
        for (const int32_t h : prefix) {
          EXPECT_NE(item.id, h) << "history item served";
        }
      }
    }
  }
}

TEST_F(QuantServeTest, ParamUpdateMidLoadRebuildsOnceAndStaysExact) {
  constexpr int64_t kTopK = 10;
  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 1;  // Every request is its own batch: maximal
  options.max_wait_us = 0;  // concurrency against the rebuild protocol.
  RequestBroker broker(&model_, options);

  // Warm request against the fresh (quantized) table.
  const Response before = broker.Recommend(ds_.TestPrefix(0), kTopK);
  ASSERT_EQ(before.status, ServeStatus::kOk);
  ASSERT_TRUE(model_.item_table_cache().quantization_enabled());
  const uint64_t rebuilds_before = model_.item_table_cache().rebuilds();

  // A real optimizer step mid-load: both tables are now stale.
  test::TrainOneStep(model_, ds_, config_.max_seq_len);
  ASSERT_FALSE(model_.item_table_cache().valid());

  // Concurrent clients race both workers into the stale-cache path.
  constexpr int64_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Response> responses(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      responses[static_cast<size_t>(c)] =
          broker.Recommend(ds_.TestPrefix(c), kTopK);
    });
  }
  for (std::thread& t : clients) t.join();

  // Exactly one rebuild covers the fp32 AND the int8 tables.
  EXPECT_EQ(model_.item_table_cache().rebuilds(), rebuilds_before + 1);
  EXPECT_TRUE(model_.item_table_cache().valid());

  // No torn read: every response matches the post-update fp32 reference.
  for (int64_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[static_cast<size_t>(c)].status, ServeStatus::kOk);
    ExpectBitwise(responses[static_cast<size_t>(c)].items,
                  SerialReference(ds_.TestPrefix(c), kTopK),
                  "post-update client " + std::to_string(c));
  }
}

TEST_F(QuantServeTest, ConcurrentSubmittersAllGetExactResponses) {
  constexpr int64_t kTopK = 10;
  constexpr int64_t kSubmitters = 4;
  constexpr int64_t kPerSubmitter = 25;

  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(16);
  std::vector<std::vector<ScoredId>> want;
  for (const auto& prefix : prefixes) {
    want.push_back(SerialReference(prefix, kTopK));
  }

  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.max_wait_us = 100;
  options.queue_capacity = kSubmitters * kPerSubmitter;
  RequestBroker broker(&model_, options);

  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> submitters;
  for (int64_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int64_t i = 0; i < kPerSubmitter; ++i) {
        const size_t which =
            static_cast<size_t>((s * kPerSubmitter + i) % prefixes.size());
        Request request;
        request.prefix = prefixes[which];
        request.topk = kTopK;
        const Response response = broker.Submit(std::move(request)).get();
        if (response.status != ServeStatus::kOk ||
            response.items.size() != want[which].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < want[which].size(); ++j) {
          if (response.items[j].id != want[which][j].id ||
              std::memcmp(&response.items[j].score, &want[which][j].score,
                          sizeof(float)) != 0) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.submitted, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.completed, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.quant_batches, stats.batches);
}

}  // namespace
}  // namespace pmmrec
