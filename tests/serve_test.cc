// The serving broker (src/serve/broker.h). The load-bearing claims:
//
//  1. Determinism under nondeterministic batching — a broker response is
//     bitwise identical to the serial single-user path (ScoreItems +
//     TopKSelect) for every tested combination of worker count, intra-op
//     thread count, coalescing policy, arrival pattern, and duplicate
//     merging. Which batch a request lands in must never show in its
//     response.
//  2. Backpressure and deadlines are checked statuses, never hangs:
//     queue-full rejects at submit, expired deadlines shed at dequeue,
//     invalid requests reject immediately, shutdown flushes the queue.
//  3. Invalidation safety — a parameter update between requests triggers
//     exactly one item-table rebuild across all workers, and no response
//     is ever computed from a torn table.
//
// Labelled `serve`; CI also runs this suite under PMMREC_SANITIZE=thread.

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "serve/broker.h"
#include "tests/test_util.h"
#include "utils/parallel.h"
#include "utils/topk.h"

namespace pmmrec {
namespace {

using serve::BrokerOptions;
using serve::BrokerStats;
using serve::Request;
using serve::RequestBroker;
using serve::Response;
using serve::ServeStatus;
using test::ExpectBitwise;

using ServeTest = test::SmallModelTest;

TEST_F(ServeTest, BitwiseEqualAcrossWorkersThreadsAndPolicies) {
  constexpr int64_t kTopK = 10;
  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(24);
  std::vector<std::vector<ScoredId>> want;
  {
    NumThreadsGuard guard(1);
    for (const auto& prefix : prefixes) {
      want.push_back(SerialReference(prefix, kTopK));
    }
  }

  struct Policy {
    int64_t max_batch;
    int64_t max_wait_us;
  };
  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    for (const int64_t workers : {int64_t{1}, int64_t{4}}) {
      for (const Policy policy : {Policy{1, 0}, Policy{16, 500}}) {
        BrokerOptions options;
        options.num_workers = workers;
        options.max_batch = policy.max_batch;
        options.max_wait_us = policy.max_wait_us;
        options.queue_capacity = 64;
        RequestBroker broker(&model_, options);

        std::vector<std::future<Response>> futures;
        for (const auto& prefix : prefixes) {
          Request request;
          request.prefix = prefix;
          request.topk = kTopK;
          futures.push_back(broker.Submit(std::move(request)));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
          const Response response = futures[i].get();
          const std::string what =
              "threads=" + std::to_string(threads) +
              " workers=" + std::to_string(workers) +
              " max_batch=" + std::to_string(policy.max_batch) +
              " request=" + std::to_string(i);
          ASSERT_EQ(response.status, ServeStatus::kOk) << what;
          ExpectBitwise(response.items, want[i], what);
        }
      }
    }
  }
}

TEST_F(ServeTest, AdversarialArrivalPatternsDoNotChangeResponses) {
  constexpr int64_t kTopK = 10;
  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(16);
  std::vector<std::vector<ScoredId>> want;
  for (const auto& prefix : prefixes) {
    want.push_back(SerialReference(prefix, kTopK));
  }

  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 16;
  options.max_wait_us = 200;
  options.queue_capacity = 64;
  RequestBroker broker(&model_, options);

  const auto submit = [&](size_t i) {
    Request request;
    request.prefix = prefixes[i];
    request.topk = kTopK;
    return broker.Submit(std::move(request));
  };

  // Pattern 1: trickle — one outstanding request at a time, so most
  // batches have size 1.
  for (size_t i = 0; i < prefixes.size(); ++i) {
    const Response response = submit(i).get();
    ASSERT_EQ(response.status, ServeStatus::kOk);
    ExpectBitwise(response.items, want[i], "trickle " + std::to_string(i));
  }

  // Pattern 2: paused accumulation — requests pile up while no worker may
  // start, then coalesce into one maximal batch on Resume.
  broker.Pause();
  std::vector<std::future<Response>> futures;
  for (size_t i = 0; i < prefixes.size(); ++i) futures.push_back(submit(i));
  broker.Resume();
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ASSERT_EQ(response.status, ServeStatus::kOk);
    ExpectBitwise(response.items, want[i], "paused " + std::to_string(i));
    EXPECT_GT(response.batch_size, 1) << "paused accumulation never "
                                         "coalesced; the pattern is not "
                                         "adversarial";
  }

  // Pattern 3: duplicate storm — the same prefix many times, interleaved
  // with distinct ones; duplicates collapse onto one scored row.
  const BrokerStats before = broker.stats();
  futures.clear();
  broker.Pause();
  for (int round = 0; round < 3; ++round) {
    for (const size_t i : {size_t{0}, size_t{1}}) futures.push_back(submit(i));
    futures.push_back(submit(2 + static_cast<size_t>(round)));
  }
  broker.Resume();
  for (size_t f = 0; f < futures.size(); ++f) {
    const Response response = futures[f].get();
    ASSERT_EQ(response.status, ServeStatus::kOk);
    const size_t i = f % 3 == 2 ? 2 + f / 3 : f % 3;
    ExpectBitwise(response.items, want[i], "dup-storm " + std::to_string(f));
  }
  EXPECT_GT(broker.stats().merged_requests, before.merged_requests)
      << "duplicate storm collapsed nothing";
}

TEST_F(ServeTest, MergeDuplicatesOffMatchesMergeDuplicatesOn) {
  constexpr int64_t kTopK = 7;
  const std::vector<int32_t> prefix = ds_.TestPrefix(3);
  const std::vector<ScoredId> want = SerialReference(prefix, kTopK);

  for (const bool merge : {true, false}) {
    BrokerOptions options;
    options.num_workers = 1;
    options.max_batch = 8;
    options.max_wait_us = 200;
    options.merge_duplicates = merge;
    RequestBroker broker(&model_, options);

    broker.Pause();
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 6; ++i) {
      Request request;
      request.prefix = prefix;
      request.topk = kTopK;
      futures.push_back(broker.Submit(std::move(request)));
    }
    broker.Resume();
    for (auto& future : futures) {
      const Response response = future.get();
      ASSERT_EQ(response.status, ServeStatus::kOk);
      ExpectBitwise(response.items, want,
                    merge ? "merge=on" : "merge=off");
    }
    const BrokerStats stats = broker.stats();
    if (merge) {
      EXPECT_GT(stats.merged_requests, 0u);
    } else {
      EXPECT_EQ(stats.merged_requests, 0u);
    }
  }
}

TEST_F(ServeTest, ExpiredDeadlineIsShedWithCheckedStatus) {
  BrokerOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.max_wait_us = 0;
  RequestBroker broker(&model_, options);

  broker.Pause();
  Request doomed;
  doomed.prefix = ds_.TestPrefix(0);
  doomed.topk = 5;
  doomed.deadline_ns = serve::DeadlineFromNow(/*budget_us=*/100);
  std::future<Response> doomed_future = broker.Submit(std::move(doomed));

  Request healthy;
  healthy.prefix = ds_.TestPrefix(1);
  healthy.topk = 5;  // No deadline: must be scored normally.
  std::future<Response> healthy_future = broker.Submit(std::move(healthy));

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  broker.Resume();

  const Response shed = doomed_future.get();
  EXPECT_EQ(shed.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(shed.items.empty());
  EXPECT_GT(shed.queue_ns, 0u);

  const Response ok = healthy_future.get();
  EXPECT_EQ(ok.status, ServeStatus::kOk);
  ExpectBitwise(ok.items, SerialReference(ds_.TestPrefix(1), 5), "healthy");

  EXPECT_EQ(broker.stats().deadline_exceeded, 1u);
}

TEST_F(ServeTest, FullQueueRejectsImmediatelyWithCheckedStatus) {
  BrokerOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.queue_capacity = 2;
  RequestBroker broker(&model_, options);

  broker.Pause();
  const auto submit = [&](int64_t user) {
    Request request;
    request.prefix = ds_.TestPrefix(user);
    request.topk = 5;
    return broker.Submit(std::move(request));
  };
  std::future<Response> first = submit(0);
  std::future<Response> second = submit(1);
  std::future<Response> overflow = submit(2);

  // The rejection resolves immediately — no worker involvement, no block.
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(overflow.get().status, ServeStatus::kQueueFull);
  EXPECT_EQ(broker.stats().rejected_queue_full, 1u);

  broker.Resume();
  EXPECT_EQ(first.get().status, ServeStatus::kOk);
  EXPECT_EQ(second.get().status, ServeStatus::kOk);
}

TEST_F(ServeTest, InvalidRequestsRejectImmediately) {
  RequestBroker broker(&model_, BrokerOptions{});

  Request empty_prefix;
  empty_prefix.topk = 5;
  std::future<Response> no_prefix = broker.Submit(std::move(empty_prefix));
  ASSERT_EQ(no_prefix.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(no_prefix.get().status, ServeStatus::kInvalidRequest);

  Request bad_topk;
  bad_topk.prefix = ds_.TestPrefix(0);
  bad_topk.topk = 0;
  EXPECT_EQ(broker.Submit(std::move(bad_topk)).get().status,
            ServeStatus::kInvalidRequest);
  EXPECT_EQ(broker.stats().rejected_invalid, 2u);
}

TEST_F(ServeTest, ShutdownFlushesQueuedRequestsAndRejectsNewOnes) {
  BrokerOptions options;
  options.num_workers = 1;
  RequestBroker broker(&model_, options);

  broker.Pause();
  Request request;
  request.prefix = ds_.TestPrefix(0);
  request.topk = 5;
  std::future<Response> queued = broker.Submit(std::move(request));
  broker.Shutdown();

  EXPECT_EQ(queued.get().status, ServeStatus::kShutdown);
  EXPECT_EQ(broker.stats().shutdown_flushed, 1u);

  Request late;
  late.prefix = ds_.TestPrefix(1);
  late.topk = 5;
  EXPECT_EQ(broker.Submit(std::move(late)).get().status,
            ServeStatus::kShutdown);
}

TEST_F(ServeTest, ParamUpdateBetweenRequestsRebuildsExactlyOnce) {
  constexpr int64_t kTopK = 10;
  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 1;  // Every request is its own batch: maximal
  options.max_wait_us = 0;  // concurrency against the rebuild protocol.
  RequestBroker broker(&model_, options);

  // Warm request against the fresh table.
  const Response before = broker.Recommend(ds_.TestPrefix(0), kTopK);
  ASSERT_EQ(before.status, ServeStatus::kOk);
  const uint64_t rebuilds_before = model_.item_table_cache().rebuilds();

  // A real optimizer step between requests: the item table is now stale.
  test::TrainOneStep(model_, ds_, config_.max_seq_len);
  ASSERT_FALSE(model_.item_table_cache().valid());

  // Concurrent clients race both workers into the stale-cache path.
  constexpr int64_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Response> responses(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      responses[static_cast<size_t>(c)] =
          broker.Recommend(ds_.TestPrefix(c), kTopK);
    });
  }
  for (std::thread& t : clients) t.join();

  // Exactly one rebuild, no matter how many workers hit the stale table.
  EXPECT_EQ(model_.item_table_cache().rebuilds(), rebuilds_before + 1);
  EXPECT_TRUE(model_.item_table_cache().valid());

  // And no torn read: every response matches the post-update serial path.
  for (int64_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[static_cast<size_t>(c)].status, ServeStatus::kOk);
    ExpectBitwise(responses[static_cast<size_t>(c)].items,
                  SerialReference(ds_.TestPrefix(c), kTopK),
                  "post-update client " + std::to_string(c));
  }
}

TEST_F(ServeTest, ConcurrentSubmittersAllGetCorrectResponses) {
  constexpr int64_t kTopK = 10;
  constexpr int64_t kSubmitters = 4;
  constexpr int64_t kPerSubmitter = 25;

  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(16);
  std::vector<std::vector<ScoredId>> want;
  for (const auto& prefix : prefixes) {
    want.push_back(SerialReference(prefix, kTopK));
  }

  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.max_wait_us = 100;
  options.queue_capacity = kSubmitters * kPerSubmitter;
  RequestBroker broker(&model_, options);

  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> submitters;
  for (int64_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int64_t i = 0; i < kPerSubmitter; ++i) {
        const size_t which =
            static_cast<size_t>((s * kPerSubmitter + i) % prefixes.size());
        Request request;
        request.prefix = prefixes[which];
        request.topk = kTopK;
        const Response response = broker.Submit(std::move(request)).get();
        if (response.status != ServeStatus::kOk ||
            response.items.size() != want[which].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < want[which].size(); ++j) {
          if (response.items[j].id != want[which][j].id ||
              std::memcmp(&response.items[j].score, &want[which][j].score,
                          sizeof(float)) != 0) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.submitted, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.completed, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.batched_requests, stats.completed);
  EXPECT_GE(stats.batches, stats.completed / 8);
}

}  // namespace
}  // namespace pmmrec
