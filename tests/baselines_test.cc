// Tests for all eight baseline recommenders: shape sanity, learning on a
// tiny dataset, and transfer plumbing of the transferable group.

#include <gtest/gtest.h>

#include "baselines/feature_models.h"
#include "baselines/id_models.h"
#include "baselines/kmeans.h"
#include "baselines/transferable_models.h"
#include "data/generator.h"
#include "utils/logging.h"

namespace pmmrec {
namespace {

Dataset TinyDataset(uint64_t seed = 21) {
  SyntheticWorld world = SyntheticWorld(WorldConfig{});
  DatasetGenerator gen(&world);
  PlatformConfig config;
  config.name = "Tiny";
  config.platform = "HM";
  config.clusters = {6, 7};
  config.n_items = 30;
  config.n_users = 48;
  config.min_seq_len = 4;
  config.max_seq_len = 8;
  config.seed = seed;
  return gen.Generate(config);
}

PMMRecConfig TinyConfig(const Dataset& ds) {
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  config.d_model = 16;
  config.dropout = 0.0f;
  return config;
}

// Trains a model briefly and checks it clearly beats random ranking.
// (An untrained model is not a fair "random" reference here: with content
// features even random heads can luck into good rankings on a tiny
// catalogue, which makes before/after comparisons flaky.)
void ExpectModelLearns(TrainableRecommender& model, const Dataset& ds) {
  ScopedLogSilencer silence;
  FitOptions opts;
  opts.max_epochs = 10;
  opts.batch_size = 8;
  opts.max_seq_len = 8;
  opts.patience = 4;
  opts.eval_users = -1;
  FitModel(model, ds, opts);
  const RankingMetrics after = EvaluateRanking(model, ds, EvalSplit::kTest);
  const double random_hr10 = 1000.0 / static_cast<double>(ds.num_items());
  EXPECT_GT(after.Hr(10), random_hr10);
}

TEST(IdModelsTest, GruRecLearns) {
  Dataset ds = TinyDataset();
  GruRec model(ds.num_items(), 16, 8, 1);
  ExpectModelLearns(model, ds);
}

TEST(IdModelsTest, NextItNetLearns) {
  Dataset ds = TinyDataset();
  NextItNet model(ds.num_items(), 16, 8, 2);
  ExpectModelLearns(model, ds);
}

TEST(IdModelsTest, SasRecLearns) {
  Dataset ds = TinyDataset();
  SasRec model(ds.num_items(), 16, 8, 3);
  ExpectModelLearns(model, ds);
}

TEST(IdModelsTest, ScoreShapeAndCache) {
  Dataset ds = TinyDataset();
  SasRec model(ds.num_items(), 16, 8, 4);
  model.AttachDataset(&ds);
  model.PrepareForEval();
  const auto scores = model.ScoreItems(ds.TestPrefix(0));
  EXPECT_EQ(static_cast<int64_t>(scores.size()), ds.num_items());
  EXPECT_EQ(model.ScoreItems(ds.TestPrefix(0)), scores);
}

class FeatureModelsTest : public ::testing::Test {
 protected:
  FeatureModelsTest()
      : ds_(TinyDataset()),
        config_(TinyConfig(ds_)),
        encoders_(config_, 31) {
    ScopedLogSilencer silence;
    EncoderPretrainConfig pt;
    pt.epochs = 2;
    pt.batch_items = 16;
    encoders_.Pretrain(ds_, pt);
  }

  Dataset ds_;
  PMMRecConfig config_;
  PretrainedEncoders encoders_;
};

TEST_F(FeatureModelsTest, FrozenFeaturesAreStable) {
  const auto f1 = encoders_.FrozenTextFeatures(ds_);
  const auto f2 = encoders_.FrozenTextFeatures(ds_);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1.size(),
            static_cast<size_t>(ds_.num_items() * config_.d_model));
}

TEST_F(FeatureModelsTest, FdsaLearns) {
  Fdsa model(ds_.num_items(), config_, &encoders_, 5);
  ExpectModelLearns(model, ds_);
}

TEST_F(FeatureModelsTest, CarcaLearns) {
  CarcaPP model(ds_.num_items(), config_, &encoders_, 6);
  ExpectModelLearns(model, ds_);
}

TEST_F(FeatureModelsTest, UniSRecLearns) {
  UniSRec model(config_, &encoders_, 7);
  ExpectModelLearns(model, ds_);
}

TEST_F(FeatureModelsTest, VqRecLearnsAndQuantizes) {
  VqRec model(config_, &encoders_, 8);
  model.AttachDataset(&ds_);
  // Codes assigned for every item and group.
  EXPECT_EQ(model.item_codes().size(),
            static_cast<size_t>(ds_.num_items() * 4));
  VqRec fresh(config_, &encoders_, 8);
  ExpectModelLearns(fresh, ds_);
}

TEST_F(FeatureModelsTest, VqRecTransferReusesSourceCodebooks) {
  Dataset source = TinyDataset(100);
  Dataset target = TinyDataset(200);
  VqRec src(config_, &encoders_, 9);
  src.AttachDataset(&source);
  VqRec dst(config_, &encoders_, 10);
  dst.TransferFrom(src);
  dst.AttachDataset(&target);
  // Codes must exist for the target catalogue.
  EXPECT_EQ(dst.item_codes().size(),
            static_cast<size_t>(target.num_items() * 4));
  // Parameters copied.
  const auto ps = src.NamedParameters();
  const auto pd = dst.NamedParameters();
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_FLOAT_EQ(ps[i].second->data()[0], pd[i].second->data()[0]);
  }
}

TEST_F(FeatureModelsTest, MoRecLearns) {
  MoRecPP model(config_, 11);
  model.InitEncodersFrom(encoders_);
  ExpectModelLearns(model, ds_);
}

TEST_F(FeatureModelsTest, UniSRecTransferCopiesParameters) {
  UniSRec src(config_, &encoders_, 12);
  UniSRec dst(config_, &encoders_, 13);
  dst.TransferFrom(src);
  const auto ps = src.NamedParameters();
  const auto pd = dst.NamedParameters();
  ASSERT_EQ(ps.size(), pd.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    for (int64_t j = 0; j < ps[i].second->numel(); ++j) {
      ASSERT_FLOAT_EQ(ps[i].second->data()[j], pd[i].second->data()[j]);
    }
  }
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(14);
  // Two blobs around (0,0) and (10,10).
  std::vector<float> points;
  for (int i = 0; i < 30; ++i) {
    const float cx = i < 15 ? 0.0f : 10.0f;
    points.push_back(cx + rng.NormalFloat() * 0.3f);
    points.push_back(cx + rng.NormalFloat() * 0.3f);
  }
  const auto centroids = KMeans(points, 30, 2, 2, 20, rng);
  // One centroid near each blob.
  const bool ordered = centroids[0] < 5.0f;
  const float low = ordered ? centroids[0] : centroids[2];
  const float high = ordered ? centroids[2] : centroids[0];
  EXPECT_NEAR(low, 0.0f, 1.0f);
  EXPECT_NEAR(high, 10.0f, 1.0f);
}

TEST(KMeansTest, AssignmentConsistency) {
  Rng rng(15);
  std::vector<float> points;
  for (int i = 0; i < 20; ++i) {
    points.push_back(static_cast<float>(i % 4));
  }
  const auto centroids = KMeans(points, 20, 1, 2, 10, rng);
  for (int i = 0; i < 20; ++i) {
    const int64_t c = NearestCentroid(points.data() + i, centroids, 2, 1);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
}

}  // namespace
}  // namespace pmmrec
