// Tests for the PMMRec model: item encoders, fusion, modality modes,
// training dynamics, transfer plumbing and evaluation caching.

#include <cmath>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "nn/optimizer.h"
#include "data/generator.h"
#include "utils/logging.h"

namespace pmmrec {
namespace {

// A tiny dataset for fast model tests.
Dataset TinyDataset(uint64_t seed = 17) {
  SyntheticWorld world = SyntheticWorld(WorldConfig{});
  DatasetGenerator gen(&world);
  PlatformConfig config;
  config.name = "Tiny";
  config.platform = "Bili";
  config.clusters = {0, 1};
  config.n_items = 30;
  config.n_users = 40;
  config.min_seq_len = 4;
  config.max_seq_len = 8;
  config.seed = seed;
  return gen.Generate(config);
}

PMMRecConfig TinyConfig(const Dataset& ds) {
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  config.d_model = 16;
  config.dropout = 0.0f;
  return config;
}

TEST(ItemEncodersTest, TextEncoderShapes) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  Rng rng(1);
  TextEncoder te(config, &rng);
  EncoderOutput out = te.EncodeItems(ds, {0, 5, 5});
  EXPECT_EQ(out.cls.shape(), (Shape{3, 16}));
  EXPECT_EQ(out.hidden.shape(), (Shape{3, config.text_len, 16}));
  // Same item -> same embedding (deterministic in eval mode).
  te.SetTraining(false);
  EncoderOutput out2 = te.EncodeItems(ds, {5, 5});
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_FLOAT_EQ(out2.cls.at({0, j}), out2.cls.at({1, j}));
  }
}

TEST(ItemEncodersTest, VisionEncoderShapes) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  Rng rng(2);
  VisionEncoder ve(config, &rng);
  EncoderOutput out = ve.EncodeItems(ds, {0, 1});
  EXPECT_EQ(out.cls.shape(), (Shape{2, 16}));
  EXPECT_EQ(out.hidden.shape(), (Shape{2, config.n_patches, 16}));
}

TEST(ItemEncodersTest, DifferentItemsGetDifferentEmbeddings) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  Rng rng(3);
  TextEncoder te(config, &rng);
  te.SetTraining(false);
  EncoderOutput out = te.EncodeItems(ds, {0, 1});
  float diff = 0.0f;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(out.cls.at({0, j}) - out.cls.at({1, j}));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(ItemEncodersTest, PretrainingReducesLoss) {
  ScopedLogSilencer silence;
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PretrainedEncoders encoders(config, 11);

  EncoderPretrainConfig short_run;
  short_run.epochs = 1;
  short_run.batch_items = 16;
  Rng probe_rng(5);

  // Measure the pretraining loss before vs after several epochs by running
  // a fresh single pass each time.
  PretrainedEncoders fresh(config, 11);
  const float initial =
      PretrainItemEncoders(&fresh.text(), &fresh.vision(), ds, short_run);
  EncoderPretrainConfig long_run = short_run;
  long_run.epochs = 8;
  PretrainedEncoders trained(config, 11);
  const float after =
      PretrainItemEncoders(&trained.text(), &trained.vision(), ds, long_run);
  EXPECT_LT(after, initial);
}

TEST(ItemEncodersTest, PretrainingAlignsModalities) {
  // After CLIP-style pretraining, an item's text embedding should be more
  // similar to its own image than to other items' images.
  ScopedLogSilencer silence;
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PretrainedEncoders encoders(config, 12);
  EncoderPretrainConfig pt;
  pt.epochs = 10;
  encoders.Pretrain(ds, pt);

  const auto text = encoders.FrozenTextFeatures(ds);
  const auto vision = encoders.FrozenVisionFeatures(ds);
  const int64_t d = config.d_model;
  auto cos = [&](const float* a, const float* b) {
    float dot = 0, na = 0, nb = 0;
    for (int64_t j = 0; j < d; ++j) {
      dot += a[j] * b[j];
      na += a[j] * a[j];
      nb += b[j] * b[j];
    }
    return dot / std::sqrt(na * nb + 1e-9f);
  };
  int64_t wins = 0;
  const int64_t n = 20;
  for (int64_t i = 0; i < n; ++i) {
    const float own = cos(text.data() + i * d, vision.data() + i * d);
    const float other =
        cos(text.data() + i * d, vision.data() + ((i + 7) % n) * d);
    if (own > other) ++wins;
  }
  EXPECT_GE(wins, n * 3 / 5);
}

TEST(FusionTest, OutputShape) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  Rng rng(4);
  FusionModule fusion(config, &rng);
  Tensor t_hidden = Tensor::Randn(Shape{3, config.text_len, 16}, rng);
  Tensor v_hidden = Tensor::Randn(Shape{3, config.n_patches, 16}, rng);
  Tensor e = fusion.Forward(t_hidden, v_hidden);
  EXPECT_EQ(e.shape(), (Shape{3, 16}));
}

TEST(FusionTest, SensitiveToBothModalities) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  Rng rng(5);
  FusionModule fusion(config, &rng);
  fusion.SetTraining(false);
  Tensor t_hidden = Tensor::Randn(Shape{1, config.text_len, 16}, rng);
  Tensor v_hidden = Tensor::Randn(Shape{1, config.n_patches, 16}, rng);
  Tensor base = fusion.Forward(t_hidden, v_hidden);
  Tensor t2 = t_hidden.Clone();
  t2.data()[0] += 5.0f;
  Tensor v2 = v_hidden.Clone();
  v2.data()[0] += 5.0f;
  float dt = 0, dv = 0;
  Tensor out_t = fusion.Forward(t2, v_hidden);
  Tensor out_v = fusion.Forward(t_hidden, v2);
  for (int64_t j = 0; j < 16; ++j) {
    dt += std::fabs(out_t.at({0, j}) - base.at({0, j}));
    dv += std::fabs(out_v.at({0, j}) - base.at({0, j}));
  }
  EXPECT_GT(dt, 1e-4f);
  EXPECT_GT(dv, 1e-4f);
}

TEST(UserEncoderTest, CausalNoFutureLeak) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  Rng rng(6);
  UserEncoder ue(config, &rng);
  ue.SetTraining(false);
  Tensor x = Tensor::Randn(Shape{1, 6, 16}, rng);
  Tensor y1 = ue.Forward(x);
  Tensor x2 = x.Clone();
  for (int64_t j = 0; j < 16; ++j) x2.data()[5 * 16 + j] += 4.0f;
  Tensor y2 = ue.Forward(x2);
  for (int64_t l = 0; l < 5; ++l) {
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(y1.at({0, l, j}), y2.at({0, l, j}), 1e-4f);
    }
  }
}

TEST(PMMRecModelTest, LossDecreasesOverSteps) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel model(config, 42);
  model.SetPretrainingObjectives(true);
  model.AttachDataset(&ds);
  model.SetTrainingMode(true);

  AdamW opt(model.Parameters(), 2e-3f);
  Rng rng(9);
  SequenceBatcher batcher(&ds, 8, config.max_seq_len);
  float first_loss = -1, last_loss = -1;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (const auto& group : batcher.EpochUserGroups(rng)) {
      const SeqBatch batch = MakeTrainBatch(ds, group, config.max_seq_len);
      Tensor loss = model.TrainStepLoss(batch);
      if (!loss.defined()) continue;
      if (first_loss < 0) first_loss = loss.item();
      last_loss = loss.item();
      opt.ZeroGrad();
      loss.Backward();
      opt.Step();
    }
  }
  EXPECT_GT(first_loss, 0.0f);
  EXPECT_LT(last_loss, first_loss);
}

TEST(PMMRecModelTest, LossPartsPopulatedInPretraining) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel model(config, 42);
  model.SetPretrainingObjectives(true);
  model.AttachDataset(&ds);
  model.SetTrainingMode(true);
  const SeqBatch batch = MakeTrainBatch(ds, {0, 1, 2, 3}, config.max_seq_len);
  Tensor loss = model.TrainStepLoss(batch);
  ASSERT_TRUE(loss.defined());
  const auto& parts = model.last_loss_parts();
  EXPECT_GT(parts.dap, 0.0f);
  EXPECT_GT(parts.nicl, 0.0f);
  EXPECT_GT(parts.nid, 0.0f);
  EXPECT_GT(parts.rcl, 0.0f);
  EXPECT_NEAR(parts.total,
              parts.dap + config.nicl_weight * parts.nicl +
                  config.nid_weight * parts.nid +
                  config.rcl_weight * parts.rcl,
              1e-3f);
}

TEST(PMMRecModelTest, FinetuningUsesDapOnly) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel model(config, 42);
  model.SetPretrainingObjectives(false);
  model.AttachDataset(&ds);
  model.SetTrainingMode(true);
  const SeqBatch batch = MakeTrainBatch(ds, {0, 1, 2, 3}, config.max_seq_len);
  Tensor loss = model.TrainStepLoss(batch);
  ASSERT_TRUE(loss.defined());
  const auto& parts = model.last_loss_parts();
  EXPECT_GT(parts.dap, 0.0f);
  EXPECT_EQ(parts.nicl, 0.0f);
  EXPECT_EQ(parts.nid, 0.0f);
  EXPECT_EQ(parts.rcl, 0.0f);
}

TEST(PMMRecModelTest, SingleModalityModesWork) {
  Dataset ds = TinyDataset();
  for (ModalityMode mode :
       {ModalityMode::kTextOnly, ModalityMode::kVisionOnly}) {
    PMMRecConfig config = TinyConfig(ds);
    config.modality = mode;
    PMMRecModel model(config, 42);
    model.SetPretrainingObjectives(true);  // NICL silently inactive.
    model.AttachDataset(&ds);
    model.SetTrainingMode(true);
    const SeqBatch batch =
        MakeTrainBatch(ds, {0, 1, 2, 3}, config.max_seq_len);
    Tensor loss = model.TrainStepLoss(batch);
    ASSERT_TRUE(loss.defined());
    EXPECT_EQ(model.last_loss_parts().nicl, 0.0f);
    // Scoring works end-to-end.
    model.SetTrainingMode(false);
    const auto scores = model.ScoreItems(ds.TestPrefix(0));
    EXPECT_EQ(static_cast<int64_t>(scores.size()), ds.num_items());
  }
}

TEST(PMMRecModelTest, ScoreItemsDeterministicAfterEvalPrep) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);
  model.PrepareForEval();
  const auto s1 = model.ScoreItems(ds.TestPrefix(3));
  const auto s2 = model.ScoreItems(ds.TestPrefix(3));
  EXPECT_EQ(s1, s2);
}

TEST(PMMRecModelTest, TransferFromCopiesSelectedComponents) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel source(config, 1);
  PMMRecModel target(config, 2);

  auto params_equal = [](Module& a, Module& b) {
    auto pa = a.NamedParameters();
    auto pb = b.NamedParameters();
    for (size_t i = 0; i < pa.size(); ++i) {
      for (int64_t j = 0; j < pa[i].second->numel(); ++j) {
        if (pa[i].second->data()[j] != pb[i].second->data()[j]) return false;
      }
    }
    return true;
  };

  ASSERT_FALSE(params_equal(source.text_encoder(), target.text_encoder()));
  target.TransferFrom(source, TransferSetting::kItemEncoders);
  EXPECT_TRUE(params_equal(source.text_encoder(), target.text_encoder()));
  EXPECT_TRUE(params_equal(source.vision_encoder(), target.vision_encoder()));
  EXPECT_TRUE(params_equal(source.fusion(), target.fusion()));
  EXPECT_FALSE(params_equal(source.user_encoder(), target.user_encoder()));

  PMMRecModel target2(config, 3);
  target2.TransferFrom(source, TransferSetting::kUserEncoder);
  EXPECT_TRUE(params_equal(source.user_encoder(), target2.user_encoder()));
  EXPECT_FALSE(params_equal(source.text_encoder(), target2.text_encoder()));

  PMMRecModel target3(config, 4);
  target3.TransferFrom(source, TransferSetting::kFull);
  EXPECT_TRUE(params_equal(source.text_encoder(), target3.text_encoder()));
  EXPECT_TRUE(params_equal(source.user_encoder(), target3.user_encoder()));

  PMMRecModel target4(config, 5);
  target4.TransferFrom(source, TransferSetting::kTextOnly);
  EXPECT_TRUE(params_equal(source.text_encoder(), target4.text_encoder()));
  EXPECT_FALSE(params_equal(source.vision_encoder(),
                            target4.vision_encoder()));

  PMMRecModel target5(config, 6);
  target5.TransferFrom(source, TransferSetting::kVisionOnly);
  EXPECT_TRUE(
      params_equal(source.vision_encoder(), target5.vision_encoder()));
  EXPECT_FALSE(params_equal(source.text_encoder(), target5.text_encoder()));
}

TEST(PMMRecModelTest, CheckpointRoundTripThroughFile) {
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel a(config, 1);
  const std::string path = ::testing::TempDir() + "/pmmrec_model.ckpt";
  ASSERT_TRUE(a.SaveToFile(path).ok());
  PMMRecModel b(config, 2);
  ASSERT_TRUE(b.LoadFromFile(path).ok());
  a.AttachDataset(&ds);
  b.AttachDataset(&ds);
  a.PrepareForEval();
  b.PrepareForEval();
  const auto sa = a.ScoreItems(ds.TestPrefix(0));
  const auto sb = b.ScoreItems(ds.TestPrefix(0));
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_FLOAT_EQ(sa[i], sb[i]);
}

TEST(TrainerTest, FitModelImprovesOverUntrained) {
  ScopedLogSilencer silence;
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);

  PMMRecModel untrained(config, 42);
  untrained.AttachDataset(&ds);
  const RankingMetrics before =
      EvaluateRanking(untrained, ds, EvalSplit::kTest);

  PMMRecModel model(config, 42);
  FitOptions opts;
  opts.max_epochs = 8;
  opts.batch_size = 8;
  opts.eval_users = -1;
  const FitResult result = FitModel(model, ds, opts);
  const RankingMetrics after = EvaluateRanking(model, ds, EvalSplit::kTest);

  EXPECT_GE(after.Hr(10), before.Hr(10));
  EXPECT_GT(result.best_val_hr10, 0.0);
  EXPECT_EQ(static_cast<int64_t>(result.val_hr10_per_epoch.size()),
            result.epochs_run);
}

TEST(TrainerTest, EarlyStoppingRestoresBestParams) {
  ScopedLogSilencer silence;
  Dataset ds = TinyDataset();
  PMMRecConfig config = TinyConfig(ds);
  PMMRecModel model(config, 42);
  FitOptions opts;
  opts.max_epochs = 6;
  opts.batch_size = 8;
  opts.patience = 2;
  opts.eval_users = -1;
  const FitResult result = FitModel(model, ds, opts);
  // The restored model's validation metric equals the best epoch's.
  const RankingMetrics val =
      EvaluateRanking(model, ds, EvalSplit::kValidation, opts.eval_users);
  EXPECT_NEAR(val.Hr(10), result.best_val_hr10, 1e-9);
}

}  // namespace
}  // namespace pmmrec
