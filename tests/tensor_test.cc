// Forward-value and API tests for the tensor library.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "utils/rng.h"

namespace pmmrec {
namespace {

TEST(ShapeTest, Basics) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.Strides(), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, ScalarShape) {
  Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, Broadcast) {
  EXPECT_EQ(Shape::Broadcast({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(Shape::Broadcast({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(Shape::Broadcast({5}, {}), (Shape{5}));
  EXPECT_TRUE(Shape::BroadcastCompatible({2, 3}, {1, 3}));
  EXPECT_FALSE(Shape::BroadcastCompatible({2, 3}, {4}));
}

TEST(TensorTest, FactoriesAndAccess) {
  Tensor z = Tensor::Zeros(Shape{2, 2});
  EXPECT_EQ(z.at({1, 1}), 0.0f);
  Tensor f = Tensor::Full(Shape{3}, 2.5f);
  EXPECT_EQ(f.at({2}), 2.5f);
  Tensor v = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(v.at({0, 1}), 2.0f);
  EXPECT_EQ(v.at({1, 0}), 3.0f);
  EXPECT_EQ(Tensor::Scalar(7.0f).item(), 7.0f);
}

TEST(TensorTest, DetachSharesStorage) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2}, true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 5.0f;
  EXPECT_EQ(a.at({0}), 5.0f);  // Same buffer.
  Tensor c = a.Clone();
  c.data()[0] = 9.0f;
  EXPECT_EQ(a.at({0}), 5.0f);  // Clone is independent.
}

TEST(TensorTest, BackwardSimple) {
  Tensor a = Tensor::FromVector(Shape{3}, {1, 2, 3}, true);
  Tensor loss = SumAll(Mul(a, a));  // d/da = 2a
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad_data()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.grad_data()[1], 4.0f);
  EXPECT_FLOAT_EQ(a.grad_data()[2], 6.0f);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::FromVector(Shape{1}, {2.0f}, true);
  SumAll(Mul(a, a)).Backward();
  SumAll(Mul(a, a)).Backward();
  EXPECT_FLOAT_EQ(a.grad_data()[0], 8.0f);  // 2 * (2a)
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad_data()[0], 0.0f);
}

TEST(TensorTest, NoGradGuardSkipsGraph) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2}, true);
  NoGradGuard guard;
  Tensor out = Mul(a, a);
  EXPECT_EQ(out.impl()->parents.size(), 0u);
  EXPECT_FALSE(out.impl()->backward_fn != nullptr);
}

TEST(TensorTest, DiamondGraph) {
  // loss = (a*a) + (a*a) uses the same intermediate twice.
  Tensor a = Tensor::FromVector(Shape{1}, {3.0f}, true);
  Tensor sq = Mul(a, a);
  Tensor loss = SumAll(Add(sq, sq));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad_data()[0], 12.0f);  // 2 * 2a
}

TEST(OpsTest, AddBroadcastValues) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{2}, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 22.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 13.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 24.0f);
}

TEST(OpsTest, MatMulValues) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(OpsTest, BatchedMatMulMatchesLoop) {
  Rng rng(5);
  Tensor a = Tensor::Randn(Shape{3, 2, 4}, rng);
  Tensor b = Tensor::Randn(Shape{3, 4, 5}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor a2 = Slice(a, 0, bi, 1);
    Tensor b2 = Slice(b, 0, bi, 1);
    Tensor c2 = MatMul(Reshape(a2, Shape{2, 4}), Reshape(b2, Shape{4, 5}));
    for (int64_t i = 0; i < 2; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        EXPECT_NEAR(c.at({bi, i, j}), c2.at({i, j}), 1e-5f);
      }
    }
  }
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(6);
  Tensor a = Tensor::Randn(Shape{4, 7}, rng, 3.0f);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) sum += s.at({r, c});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxNumericallyStable) {
  Tensor a = Tensor::FromVector(Shape{1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor s = Softmax(a);
  EXPECT_FALSE(std::isnan(s.at({0, 0})));
  EXPECT_GT(s.at({0, 2}), s.at({0, 0}));
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(7);
  Tensor a = Tensor::Randn(Shape{3, 5}, rng);
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(ls.at({r, c}), std::log(s.at({r, c})), 1e-5f);
    }
  }
}

TEST(OpsTest, TransposeLast2Values) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(t.at({2, 0}), 3.0f);
}

TEST(OpsTest, ConcatAlongEachDim) {
  Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{1, 2}, {3, 4});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c0.at({1, 0}), 3.0f);
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{1, 4}));
  EXPECT_FLOAT_EQ(c1.at({0, 3}), 4.0f);
}

TEST(OpsTest, SliceValues) {
  Tensor a = Tensor::FromVector(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(s.at({1, 1}), 7.0f);
}

TEST(OpsTest, SelectRowsValues) {
  Tensor a = Tensor::FromVector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = SelectRows(a, {2, 0, 2});
  EXPECT_EQ(s.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(s.at({1, 1}), 2.0f);
  EXPECT_FLOAT_EQ(s.at({2, 1}), 6.0f);
}

TEST(OpsTest, EmbeddingLookupValues) {
  Tensor w = Tensor::FromVector(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor e = EmbeddingLookup(w, {2, 2, 1});
  EXPECT_FLOAT_EQ(e.at({0, 0}), 20.0f);
  EXPECT_FLOAT_EQ(e.at({1, 1}), 21.0f);
  EXPECT_FLOAT_EQ(e.at({2, 0}), 10.0f);
}

TEST(OpsTest, LayerNormNormalizes) {
  Rng rng(8);
  Tensor x = Tensor::Randn(Shape{5, 16}, rng, 4.0f);
  Tensor gamma = Tensor::Ones(Shape{16});
  Tensor beta = Tensor::Zeros(Shape{16});
  Tensor y = LayerNormOp(x, gamma, beta);
  for (int64_t r = 0; r < 5; ++r) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int64_t c = 0; c < 16; ++c) mean += y.at({r, c});
    mean /= 16.0f;
    for (int64_t c = 0; c < 16; ++c) {
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    }
    var /= 16.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(OpsTest, L2NormalizeRows) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {3, 4, 0, 5});
  Tensor y = L2Normalize(x);
  EXPECT_NEAR(y.at({0, 0}), 0.6f, 1e-5f);
  EXPECT_NEAR(y.at({0, 1}), 0.8f, 1e-5f);
  EXPECT_NEAR(y.at({1, 1}), 1.0f, 1e-5f);
}

TEST(OpsTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros(Shape{2, 4});
  Tensor loss = CrossEntropy(logits, {1, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(OpsTest, CrossEntropyIgnoresMaskedRows) {
  Tensor logits = Tensor::FromVector(Shape{2, 2}, {100.0f, 0.0f, 0.0f, 0.0f});
  // Row 0 predicts class 0 with huge confidence; row 1 is ignored.
  Tensor loss = CrossEntropy(logits, {0, -1}, -1);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
}

TEST(OpsTest, DropoutTrainAndEval) {
  Rng rng(11);
  Tensor a = Tensor::Ones(Shape{1000});
  Tensor kept = Dropout(a, 0.5f, rng, /*training=*/true);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (kept.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(kept.data()[i], 2.0f);  // Inverted scaling.
      sum += kept.data()[i];
    }
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // Expectation preserved.

  Tensor eval_out = Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(eval_out.data(), a.data());  // Identity pass-through.
}

TEST(OpsTest, Conv1dCausalIdentityKernel) {
  // Kernel with only the "current" tap = identity mapping.
  Tensor x = Tensor::FromVector(Shape{1, 3, 1}, {1, 2, 3});
  Tensor w = Tensor::FromVector(Shape{2, 1, 1}, {0.0f, 1.0f});
  Tensor y = Conv1dCausal(x, w, Tensor(), 1);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0}), 2.0f);
  EXPECT_FLOAT_EQ(y.at({0, 2, 0}), 3.0f);
}

TEST(OpsTest, Conv1dCausalNeverSeesFuture) {
  // Kernel = previous tap only: y_l = x_{l-1}, y_0 = 0.
  Tensor x = Tensor::FromVector(Shape{1, 4, 1}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector(Shape{2, 1, 1}, {1.0f, 0.0f});
  Tensor y = Conv1dCausal(x, w, Tensor(), 1);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(y.at({0, 3, 0}), 3.0f);
}

TEST(OpsTest, Conv1dCausalDilation) {
  // Previous tap with dilation 2: y_l = x_{l-2}.
  Tensor x = Tensor::FromVector(Shape{1, 4, 1}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector(Shape{2, 1, 1}, {1.0f, 0.0f});
  Tensor y = Conv1dCausal(x, w, Tensor(), 2);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0}), 0.0f);
  EXPECT_FLOAT_EQ(y.at({0, 2, 0}), 1.0f);
  EXPECT_FLOAT_EQ(y.at({0, 3, 0}), 2.0f);
}

TEST(OpsTest, ReductionValues) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).item(), 3.5f);
  Tensor s0 = Sum(a, 0, false);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.at({0}), 5.0f);
  Tensor m1 = Mean(a, 1, true);
  EXPECT_EQ(m1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(m1.at({1, 0}), 5.0f);
}

}  // namespace
}  // namespace pmmrec
