#ifndef PMMREC_TESTS_TEST_UTIL_H_
#define PMMREC_TESTS_TEST_UTIL_H_

// Shared fixtures and helpers for the serving-path suites
// (inference_test, serve_test, quant_serve_test, ann_test, plan_test,
// golden_test). Everything here encodes the common experimental setup —
// the small benchmark-suite model, mixed-length prefix batches, the
// serial bitwise reference, and the canonical "one real optimizer step"
// parameter update — so the suites assert claims, not scaffolding.

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "utils/topk.h"

namespace pmmrec {
namespace test {

// Mixed-length prefixes, including > max_seq_len tails, so batched paths
// exercise every length group.
inline std::vector<std::vector<int32_t>> MixedPrefixes(const Dataset& ds,
                                                       int64_t n) {
  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < n; ++u) {
    std::vector<int32_t> p = ds.TestPrefix(u % ds.num_users());
    // Truncate to varying lengths, including > max_seq_len tails.
    const size_t len = 1 + static_cast<size_t>(u) % p.size();
    p.resize(len);
    prefixes.push_back(std::move(p));
  }
  return prefixes;
}

// The serial single-user reference every serving path must reproduce
// bitwise: ScoreItems + the shared top-K kernel.
inline std::vector<ScoredId> SerialTopK(PMMRecModel& model,
                                        const std::vector<int32_t>& prefix,
                                        int64_t topk) {
  const std::vector<float> scores = model.ScoreItems(prefix);
  return TopKSelect(scores.data(), static_cast<int64_t>(scores.size()), topk,
                    prefix);
}

inline void ExpectBitwise(const std::vector<ScoredId>& got,
                          const std::vector<ScoredId>& want,
                          const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " position " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
        << what << " position " << i;
  }
}

// One real optimizer step over the first 8 users — the canonical
// parameter update of the invalidation tests. Bumps the process-wide
// ParamUpdateVersion, so every serving cache (item table, int8 tables,
// IVF index, recorded plans) goes stale.
inline void TrainOneStep(PMMRecModel& model, const Dataset& ds,
                         int64_t max_seq_len) {
  std::vector<int64_t> users;
  for (int64_t u = 0; u < 8; ++u) users.push_back(u);
  const SeqBatch batch = MakeTrainBatch(ds, users, max_seq_len);
  AdamW opt(model.TrainableParameters(), 1e-3f);
  Tensor loss = model.TrainStepLoss(batch);
  ASSERT_TRUE(loss.defined());
  loss.Backward();
  opt.Step();
}

// Benchmark-suite dataset + default config, no model: for suites that
// construct models per test (e.g. with per-test config variations).
class SuiteDatasetTest : public ::testing::Test {
 protected:
  SuiteDatasetTest()
      : suite_(BuildBenchmarkSuite(0.2, 13)),
        ds_(suite_.sources[0]),
        config_(PMMRecConfig::FromDataset(ds_)) {}

  std::vector<std::vector<int32_t>> MixedPrefixes(int64_t n) {
    return test::MixedPrefixes(ds_, n);
  }

  BenchmarkSuite suite_;
  const Dataset& ds_;
  PMMRecConfig config_;
};

// ... plus an attached seed-42 model. The optional mutator edits the
// config before model construction (e.g. to route a serving mode).
class SmallModelTest : public SuiteDatasetTest {
 protected:
  using ConfigMutator = std::function<void(PMMRecConfig&)>;

  explicit SmallModelTest(const ConfigMutator& mutate = {})
      : model_(MutatedConfig(mutate), 42) {
    model_.AttachDataset(&ds_);
  }

  std::vector<ScoredId> SerialReference(const std::vector<int32_t>& prefix,
                                        int64_t topk) {
    return SerialTopK(model_, prefix, topk);
  }

  PMMRecModel model_;

 private:
  // Runs before model_'s constructor; config_ lives in the base, which is
  // fully initialized by then.
  const PMMRecConfig& MutatedConfig(const ConfigMutator& mutate) {
    if (mutate) mutate(config_);
    return config_;
  }
};

}  // namespace test
}  // namespace pmmrec

#endif  // PMMREC_TESTS_TEST_UTIL_H_
