// The CandidateSource retrieval layer (core/ivf.h). The claims:
//
//  1. With the default config (no ANN, no quant), every broker response
//     is bitwise identical to the pre-candidate serial reference
//     (ScoreItems + TopKSelect) for every tested worker x thread
//     combination — the CandidateSource refactor moves no response bits
//     in exact mode.
//  2. RetrieveExactCandidates is bitwise TopKSelect over the full score
//     row, and IvfIndex at nprobe == nlist reproduces
//     ExactCandidateSource bit-for-bit (every row scanned, same kernel,
//     same order).
//  3. Candidate recall@10 is monotone in nprobe (probed lists are nested
//     as nprobe grows and in-list scores are exact).
//  4. With ANN serving on, the one-rebuild-per-param-update protocol
//     covers the IVF index: an optimizer step under concurrent client
//     load costs exactly one rebuild, and every served score is still
//     the exact fp32 score of its item.
//  5. Config contract: out-of-range nlist/nprobe and bad Retrieve
//     arguments die under PMM_CHECK.
//
// Labelled `ann`; CI also runs this suite under PMMREC_SANITIZE=thread.

#include "core/ivf.h"

#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "serve/broker.h"
#include "tests/test_util.h"
#include "utils/parallel.h"
#include "utils/rng.h"
#include "utils/topk.h"

namespace pmmrec {
namespace {

using serve::BrokerOptions;
using serve::BrokerStats;
using serve::Request;
using serve::RequestBroker;
using serve::Response;
using serve::ServeStatus;
using test::ExpectBitwise;

// Synthetic clustered table + queries (the geometry IVF exploits).
struct SyntheticTable {
  int64_t n = 0;
  int64_t d = 0;
  std::vector<float> rows;
  std::vector<float> queries;  // [nq, d]
  int64_t nq = 0;
};

SyntheticTable MakeClusteredTable(int64_t n, int64_t d, int64_t nq,
                                  uint64_t seed) {
  SyntheticTable t;
  t.n = n;
  t.d = d;
  t.nq = nq;
  const int64_t n_centers = 16;
  Rng rng(seed);
  std::vector<float> centers(static_cast<size_t>(n_centers * d));
  for (float& c : centers) c = rng.NormalFloat();
  t.rows.resize(static_cast<size_t>(n * d));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = i % n_centers;
    for (int64_t j = 0; j < d; ++j) {
      t.rows[static_cast<size_t>(i * d + j)] =
          centers[static_cast<size_t>(c * d + j)] + 0.3f * rng.NormalFloat();
    }
  }
  t.queries.resize(static_cast<size_t>(nq * d));
  for (int64_t q = 0; q < nq; ++q) {
    const int64_t c = rng.UniformInt(0, n_centers);
    for (int64_t j = 0; j < d; ++j) {
      t.queries[static_cast<size_t>(q * d + j)] =
          centers[static_cast<size_t>(c * d + j)] + 0.3f * rng.NormalFloat();
    }
  }
  return t;
}

// --- Claim 1: exact broker path is bitwise the pre-candidate scan. ----------

// Constructs models per test (default vs ann_serving configs), so only
// the dataset/config half of the fixture is shared.
using AnnServeTest = test::SuiteDatasetTest;

TEST_F(AnnServeTest, ExactBrokerBitwiseEqualAcrossWorkersAndThreads) {
  constexpr int64_t kTopK = 10;
  PMMRecModel model(config_, 42);
  model.AttachDataset(&ds_);
  ASSERT_FALSE(model.AnnServingEnabled());
  ASSERT_FALSE(model.QuantServingEnabled());

  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < 16; ++u) {
    prefixes.push_back(ds_.TestPrefix(u % ds_.num_users()));
  }
  std::vector<std::vector<ScoredId>> want;
  {
    NumThreadsGuard guard(1);
    for (const auto& prefix : prefixes) {
      want.push_back(test::SerialTopK(model, prefix, kTopK));
    }
  }

  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    for (const int64_t workers : {int64_t{1}, int64_t{4}}) {
      BrokerOptions options;
      options.num_workers = workers;
      options.max_batch = 8;
      options.max_wait_us = 200;
      options.queue_capacity = 64;
      RequestBroker broker(&model, options);
      std::vector<std::future<Response>> futures;
      for (const auto& prefix : prefixes) {
        Request request;
        request.prefix = prefix;
        request.topk = kTopK;
        futures.push_back(broker.Submit(std::move(request)));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        const Response response = futures[i].get();
        const std::string what = "threads=" + std::to_string(threads) +
                                 " workers=" + std::to_string(workers) +
                                 " request=" + std::to_string(i);
        ASSERT_EQ(response.status, ServeStatus::kOk) << what;
        ExpectBitwise(response.items, want[i], what);
      }
      EXPECT_EQ(broker.stats().ann_batches, 0u)
          << "ANN branch taken without ann_serving";
    }
  }
}

TEST_F(AnnServeTest, RetrieveExactCandidatesIsBitwiseFullScan) {
  constexpr int64_t kLimit = 25;
  PMMRecModel model(config_, 42);
  model.AttachDataset(&ds_);
  model.PrepareForEval();
  std::vector<std::vector<int32_t>> prefixes;
  for (int64_t u = 0; u < 6; ++u) prefixes.push_back(ds_.TestPrefix(u));
  const std::vector<std::vector<ScoredId>> got =
      model.RetrieveExactCandidates(prefixes, kLimit);
  ASSERT_EQ(got.size(), prefixes.size());
  for (size_t i = 0; i < prefixes.size(); ++i) {
    const std::vector<float> scores = model.ScoreItems(prefixes[i]);
    const std::vector<ScoredId> want = TopKSelect(
        scores.data(), static_cast<int64_t>(scores.size()), kLimit);
    ExpectBitwise(got[i], want, "prefix " + std::to_string(i));
  }
}

// --- Claim 4: rebuild-exactly-once with the IVF index riding along. ---------

TEST_F(AnnServeTest, ParamUpdateMidLoadRebuildsOnceWithAnnEnabled) {
  constexpr int64_t kTopK = 5;
  PMMRecConfig config = config_;
  config.ann_serving = true;
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds_);

  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 1;  // Maximal concurrency against the rebuild.
  options.max_wait_us = 0;
  RequestBroker broker(&model, options);

  const Response before = broker.Recommend(ds_.TestPrefix(0), kTopK);
  ASSERT_EQ(before.status, ServeStatus::kOk);
  ASSERT_TRUE(model.AnnServingEnabled());
  ASSERT_TRUE(model.item_table_cache().ann_enabled());
  const uint64_t rebuilds_before = model.item_table_cache().rebuilds();

  // A real optimizer step: the fp32 table AND the IVF index go stale.
  test::TrainOneStep(model, ds_, config.max_seq_len);
  ASSERT_FALSE(model.item_table_cache().valid());

  constexpr int64_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Response> responses(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      responses[static_cast<size_t>(c)] =
          broker.Recommend(ds_.TestPrefix(c), kTopK);
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(model.item_table_cache().rebuilds(), rebuilds_before + 1);
  EXPECT_TRUE(model.item_table_cache().valid());
  EXPECT_GT(broker.stats().ann_batches, 0u);

  // ANN may narrow WHICH items are served, but every served score must
  // be the exact post-update fp32 score of its item.
  for (int64_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[static_cast<size_t>(c)].status, ServeStatus::kOk);
    const std::vector<float> scores = model.ScoreItems(ds_.TestPrefix(c));
    for (const ScoredId& item : responses[static_cast<size_t>(c)].items) {
      EXPECT_EQ(std::memcmp(&item.score,
                            &scores[static_cast<size_t>(item.id)],
                            sizeof(float)),
                0)
          << "client " << c << " item " << item.id;
    }
  }
}

// --- Claim 2: nprobe == nlist reproduces the exact source bitwise. ----------

TEST(IvfIndexTest, FullProbeBitwiseEqualsExactSource) {
  const SyntheticTable t = MakeClusteredTable(600, 12, 24, 21);
  constexpr int64_t kLimit = 15;
  ExactCandidateSource exact(t.rows.data(), t.n, t.d);
  const std::vector<std::vector<ScoredId>> want =
      exact.Retrieve(t.queries.data(), t.nq, kLimit);

  IvfConfig config;
  config.nlist = 20;
  config.nprobe = 20;
  IvfIndex index;
  index.Build(t.rows.data(), t.n, t.d, nullptr, config);
  EXPECT_EQ(index.nlist(), 20);
  EXPECT_EQ(index.nprobe(), 20);
  const std::vector<std::vector<ScoredId>> got =
      IvfCandidateSource(&index).Retrieve(t.queries.data(), t.nq, kLimit);
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < want.size(); ++q) {
    ExpectBitwise(got[q], want[q], "query " + std::to_string(q));
  }
}

TEST(IvfIndexTest, RetrieveDeterministicAcrossThreadCounts) {
  const SyntheticTable t = MakeClusteredTable(400, 8, 16, 33);
  IvfConfig config;
  IvfIndex index;
  index.Build(t.rows.data(), t.n, t.d, nullptr, config);
  std::vector<std::vector<std::vector<ScoredId>>> runs;
  for (const int64_t threads : {1, 4}) {
    NumThreadsGuard guard(threads);
    runs.push_back(
        IvfCandidateSource(&index).Retrieve(t.queries.data(), t.nq, 10));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t q = 0; q < runs[0].size(); ++q) {
    ExpectBitwise(runs[1][q], runs[0][q], "query " + std::to_string(q));
  }
}

// --- Claim 3: recall@10 is monotone in nprobe. ------------------------------

TEST(IvfIndexTest, RecallMonotoneInNprobe) {
  const SyntheticTable t = MakeClusteredTable(800, 12, 32, 5);
  constexpr int64_t kTopK = 10;
  ExactCandidateSource exact(t.rows.data(), t.n, t.d);
  const std::vector<std::vector<ScoredId>> truth =
      exact.Retrieve(t.queries.data(), t.nq, kTopK);

  const int64_t nlist = 24;
  double previous = -1.0;
  for (const int64_t nprobe : {1, 2, 4, 8, 16, 24}) {
    IvfConfig config;
    config.nlist = nlist;
    config.nprobe = nprobe;
    IvfIndex index;
    index.Build(t.rows.data(), t.n, t.d, nullptr, config);
    const std::vector<std::vector<ScoredId>> got =
        IvfCandidateSource(&index).Retrieve(t.queries.data(), t.nq, kTopK);
    double recall = 0;
    for (int64_t q = 0; q < t.nq; ++q) {
      int64_t hit = 0;
      for (const ScoredId& e : truth[static_cast<size_t>(q)]) {
        for (const ScoredId& g : got[static_cast<size_t>(q)]) {
          if (g.id == e.id) {
            ++hit;
            break;
          }
        }
      }
      recall += static_cast<double>(hit) /
                static_cast<double>(truth[static_cast<size_t>(q)].size());
    }
    recall /= static_cast<double>(t.nq);
    // Probed lists are nested as nprobe grows and in-list scores exact,
    // so per-query recall can only grow.
    EXPECT_GE(recall, previous) << "nprobe " << nprobe;
    previous = recall;
  }
  EXPECT_EQ(previous, 1.0) << "full probe must recall everything";
}

// Quantized lists: approximation may narrow WHICH items return, but every
// returned score is the exact fp32 score of its item.
TEST(IvfIndexTest, QuantizedListsReturnExactScores) {
  const SyntheticTable t = MakeClusteredTable(500, 16, 16, 77);
  QuantizedTable qt;
  QuantizeTableRows(t.rows.data(), t.n, t.d, &qt);
  IvfConfig config;
  config.nlist = 16;
  config.nprobe = 16;
  IvfIndex index;
  index.Build(t.rows.data(), t.n, t.d, &qt, config);
  ASSERT_TRUE(index.quantized_lists());
  IvfCandidateSource source(&index);
  EXPECT_STREQ(source.name(), "ivf+int8");
  const std::vector<std::vector<ScoredId>> got =
      source.Retrieve(t.queries.data(), t.nq, 10);
  for (int64_t q = 0; q < t.nq; ++q) {
    for (const ScoredId& item : got[static_cast<size_t>(q)]) {
      float want = 0.0f;
      for (int64_t j = 0; j < t.d; ++j) {
        want += t.queries[static_cast<size_t>(q * t.d + j)] *
                t.rows[static_cast<size_t>(item.id * t.d + j)];
      }
      EXPECT_EQ(std::memcmp(&item.score, &want, sizeof(float)), 0)
          << "query " << q << " item " << item.id;
    }
  }
}

// --- Claim 5: contract death tests. -----------------------------------------

TEST(IvfDeathTest, NlistOutOfRange) {
  EXPECT_DEATH(IvfIndex::ResolveNlist(101, 100), "nlist");
  EXPECT_DEATH(IvfIndex::ResolveNlist(-1, 100), "nlist");
}

TEST(IvfDeathTest, NprobeOutOfRange) {
  EXPECT_DEATH(IvfIndex::ResolveNprobe(11, 10), "nprobe");
  EXPECT_DEATH(IvfIndex::ResolveNprobe(-2, 10), "nprobe");
}

TEST(IvfDeathTest, BadRetrieveArguments) {
  const SyntheticTable t = MakeClusteredTable(100, 4, 2, 3);
  IvfIndex unbuilt;
  EXPECT_DEATH(unbuilt.Retrieve(t.queries.data(), 1, 10), "PMM_CHECK");
  IvfConfig config;
  IvfIndex index;
  index.Build(t.rows.data(), t.n, t.d, nullptr, config);
  EXPECT_DEATH(index.Retrieve(t.queries.data(), 1, 0), "PMM_CHECK");
  EXPECT_DEATH(index.Retrieve(nullptr, 1, 10), "PMM_CHECK");
}

}  // namespace
}  // namespace pmmrec
