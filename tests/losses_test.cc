// Tests for the PMMRec objectives (DAP, VCL/ICL/NICL, NID, RCL) and
// sequence corruption. These check the loss semantics of paper Eq. 5-11:
// which pairs count as positives, which as negatives, and that gradients
// point the right way.

#include <cmath>

#include <gtest/gtest.h>

#include "core/corruption.h"
#include "core/losses.h"
#include "tests/gradcheck.h"

namespace pmmrec {
namespace {

// Batch of two users sharing no items:
//   user 0: items 10, 11, 12
//   user 1: items 20, 21
SeqBatch TwoUserBatch() {
  return MakeBatchFromSequences({{10, 11, 12}, {20, 21}}, 4);
}

TEST(CorruptionTest, LabelsAreConsistentWithChanges) {
  Rng rng(3);
  SeqBatch batch = MakeBatchFromSequences(
      {{1, 2, 3, 4, 5, 6, 7, 8}, {9, 10, 11, 12, 13, 14, 15, 16}}, 8);
  for (int trial = 0; trial < 20; ++trial) {
    const CorruptedBatch corrupted = CorruptSequences(batch, 0.25f, 0.2f, rng);
    ASSERT_EQ(corrupted.labels.size(), batch.position_to_unique.size());
    int shuffled = 0, replaced = 0;
    for (size_t p = 0; p < corrupted.labels.size(); ++p) {
      const int32_t label = corrupted.labels[p];
      const int32_t before = batch.position_to_unique[p];
      const int32_t after = corrupted.position_to_unique[p];
      if (before < 0) {
        EXPECT_EQ(label, kNidIgnore);
        EXPECT_EQ(after, -1);
        continue;
      }
      EXPECT_NE(label, kNidIgnore);
      if (label == kNidUnchanged) {
        EXPECT_EQ(after, before);
      } else if (label == kNidReplaced) {
        ++replaced;
        EXPECT_NE(after, before);
        EXPECT_GE(after, 0);
        EXPECT_LT(after, batch.num_unique());
      } else {
        ++shuffled;
      }
    }
    EXPECT_GE(shuffled, 2);  // At least one rotation of >= 2 positions.
  }
}

TEST(CorruptionTest, ShuffleKeepsMultisetOfItems) {
  Rng rng(4);
  SeqBatch batch = MakeBatchFromSequences({{1, 2, 3, 4, 5, 6}}, 6);
  const CorruptedBatch corrupted =
      CorruptSequences(batch, 0.5f, 0.0f, rng);  // No replacement.
  std::vector<int32_t> before(batch.position_to_unique);
  std::vector<int32_t> after(corrupted.position_to_unique);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(DapLossTest, PrefersTrueNextItem) {
  // Hidden state at (0, 0) equals the representation of user 0's next item
  // -> loss must be lower than when it matches a different user's item.
  SeqBatch batch = TwoUserBatch();
  const int64_t d = 4;
  const int64_t u = batch.num_unique();  // 5 items.
  Rng rng(5);
  Tensor reps = Tensor::Randn(Shape{u, d}, rng, 1.0f);

  auto hidden_matching = [&](int32_t unique_idx) {
    Tensor h = Tensor::Zeros(Shape{2, 4, d});
    // All positions point at the right next item except we control (0,0).
    for (int64_t b = 0; b < 2; ++b) {
      const int64_t len = batch.RowLength(b);
      for (int64_t l = 0; l + 1 < len; ++l) {
        const int32_t next = batch.UniqueAt(b, l + 1);
        for (int64_t j = 0; j < d; ++j) {
          h.data()[(b * 4 + l) * d + j] = 3.0f * reps.at({next, j});
        }
      }
    }
    for (int64_t j = 0; j < d; ++j) {
      h.data()[j] = 3.0f * reps.at({unique_idx, j});
    }
    return h;
  };

  const int32_t true_next = batch.UniqueAt(0, 1);
  const int32_t other_user_item = batch.UniqueAt(1, 0);
  const float good = DapLoss(hidden_matching(true_next), reps, batch).item();
  const float bad =
      DapLoss(hidden_matching(other_user_item), reps, batch).item();
  EXPECT_LT(good, bad);
}

TEST(DapLossTest, OwnItemsAreNotNegatives) {
  // Make the hidden state also align strongly with ANOTHER item of the
  // same user; since own items are masked from the denominator, the loss
  // must stay (near) zero.
  SeqBatch batch = TwoUserBatch();
  const int64_t d = 8;
  const int64_t u = batch.num_unique();
  Tensor reps = Tensor::Zeros(Shape{u, d});
  // Orthogonal one-hot representations.
  for (int64_t i = 0; i < u; ++i) reps.data()[i * d + i] = 1.0f;

  Tensor h = Tensor::Zeros(Shape{2, 4, d});
  for (int64_t b = 0; b < 2; ++b) {
    const int64_t len = batch.RowLength(b);
    for (int64_t l = 0; l + 1 < len; ++l) {
      const int32_t next = batch.UniqueAt(b, l + 1);
      h.data()[(b * 4 + l) * d + next] = 20.0f;
      // Also align with the user's FIRST item (an own item).
      h.data()[(b * 4 + l) * d + batch.UniqueAt(b, 0)] = 20.0f;
    }
  }
  const float loss = DapLoss(h, reps, batch).item();
  // The own-item logit is masked, so the target still wins (≈ log(1)).
  EXPECT_LT(loss, 0.1f);
}

TEST(DapLossTest, GradCheck) {
  SeqBatch batch = TwoUserBatch();
  Rng rng(6);
  Tensor hidden = Tensor::Randn(Shape{2, 4, 4}, rng, 0.8f, true);
  Tensor reps =
      Tensor::Randn(Shape{batch.num_unique(), 4}, rng, 0.8f, true);
  auto loss = [&] { return DapLoss(hidden, reps, batch); };
  testing::ExpectGradientsClose(loss, hidden, 1e-2f, 3e-2f);
  testing::ExpectGradientsClose(loss, reps, 1e-2f, 3e-2f);
}

TEST(CrossModalLossTest, OffModeReturnsUndefined) {
  SeqBatch batch = TwoUserBatch();
  Rng rng(7);
  Tensor t = Tensor::Randn(Shape{batch.num_unique(), 4}, rng);
  Tensor v = Tensor::Randn(Shape{batch.num_unique(), 4}, rng);
  EXPECT_FALSE(
      CrossModalLoss(t, v, batch, NiclMode::kOff, 0.15f).defined());
}

TEST(CrossModalLossTest, AlignedModalitiesScoreLower) {
  SeqBatch batch = TwoUserBatch();
  const int64_t u = batch.num_unique();
  const int64_t d = 8;
  Rng rng(8);
  Tensor t = Tensor::Randn(Shape{u, d}, rng);
  Tensor v_aligned = t.Clone();
  Tensor v_random = Tensor::Randn(Shape{u, d}, rng);
  for (NiclMode mode :
       {NiclMode::kVcl, NiclMode::kIcl, NiclMode::kNicl}) {
    const float aligned =
        CrossModalLoss(t, v_aligned, batch, mode, 0.15f).item();
    const float random =
        CrossModalLoss(t, v_random, batch, mode, 0.15f).item();
    EXPECT_LT(aligned, random) << "mode " << static_cast<int>(mode);
  }
}

TEST(CrossModalLossTest, NiclRewardsNextItemAlignment) {
  // With NICL, making the anchor similar to the NEXT item's embedding
  // lowers the loss (next items are positives, Eq. 8); with VCL it does
  // not help the numerator.
  SeqBatch batch = TwoUserBatch();
  const int64_t u = batch.num_unique();
  const int64_t d = 8;
  Rng rng(9);
  Tensor t = Tensor::Randn(Shape{u, d}, rng);
  Tensor v = t.Clone();

  // Pull item (0,0)'s text embedding toward its next item (0,1).
  Tensor t_next_aligned = t.Clone();
  const int32_t c = batch.UniqueAt(0, 0);
  const int32_t n = batch.UniqueAt(0, 1);
  for (int64_t j = 0; j < d; ++j) {
    t_next_aligned.data()[c * d + j] =
        0.2f * t.data()[c * d + j] + 0.8f * t.data()[n * d + j];
  }
  const float nicl_before =
      CrossModalLoss(t, v, batch, NiclMode::kNicl, 0.15f).item();
  const float nicl_after =
      CrossModalLoss(t_next_aligned, v, batch, NiclMode::kNicl, 0.15f).item();
  EXPECT_LT(nicl_after, nicl_before + 0.05f);
}

TEST(CrossModalLossTest, IclAddsIntraModalityNegatives) {
  // Making two DIFFERENT-user items' text embeddings similar should hurt
  // ICL (intra-modality negative) more than VCL (which has no tt terms).
  SeqBatch batch = TwoUserBatch();
  const int64_t u = batch.num_unique();
  const int64_t d = 8;
  Rng rng(10);
  Tensor t = Tensor::Randn(Shape{u, d}, rng);
  Tensor v = t.Clone();

  Tensor t_collided = t.Clone();
  const int32_t a = batch.UniqueAt(0, 0);   // User 0 item.
  const int32_t b = batch.UniqueAt(1, 0);   // User 1 item.
  for (int64_t j = 0; j < d; ++j) {
    t_collided.data()[a * d + j] = t.data()[b * d + j];
  }
  const float vcl_delta =
      CrossModalLoss(t_collided, v, batch, NiclMode::kVcl, 0.15f).item() -
      CrossModalLoss(t, v, batch, NiclMode::kVcl, 0.15f).item();
  const float icl_delta =
      CrossModalLoss(t_collided, v, batch, NiclMode::kIcl, 0.15f).item() -
      CrossModalLoss(t, v, batch, NiclMode::kIcl, 0.15f).item();
  EXPECT_GT(icl_delta, vcl_delta);
}

TEST(CrossModalLossTest, GradCheckAllModes) {
  SeqBatch batch = TwoUserBatch();
  Rng rng(11);
  Tensor t = Tensor::Randn(Shape{batch.num_unique(), 4}, rng, 0.6f, true);
  Tensor v = Tensor::Randn(Shape{batch.num_unique(), 4}, rng, 0.6f, true);
  for (NiclMode mode : {NiclMode::kVcl, NiclMode::kIcl, NiclMode::kNicl}) {
    auto loss = [&] { return CrossModalLoss(t, v, batch, mode, 0.3f); };
    testing::ExpectGradientsClose(loss, t, 1e-2f, 4e-2f);
    testing::ExpectGradientsClose(loss, v, 1e-2f, 4e-2f);
  }
}

TEST(NidLossTest, PerfectClassifierGetsLowLoss) {
  SeqBatch batch = MakeBatchFromSequences(
      {{1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12}}, 6);
  Rng rng(12);
  const CorruptedBatch corrupted = CorruptSequences(batch, 0.3f, 0.2f, rng);

  const int64_t d = 4;
  // Hidden states encode the label in the first component.
  Tensor hidden = Tensor::Zeros(Shape{2, 6, d});
  for (size_t p = 0; p < corrupted.labels.size(); ++p) {
    if (corrupted.labels[p] == kNidIgnore) continue;
    hidden.data()[p * d] = static_cast<float>(corrupted.labels[p]);
  }
  Rng rng2(13);
  Linear head(d, 3, rng2);
  // Hand-craft the head: logit_k = large if x0 == k.
  head.weight.Fill(0.0f);
  head.weight.data()[0 * 3 + 0] = -20.0f;
  head.weight.data()[0 * 3 + 1] = 0.0f;
  head.weight.data()[0 * 3 + 2] = 20.0f;
  head.bias.data()[0] = 10.0f;
  head.bias.data()[1] = 0.0f;
  head.bias.data()[2] = -30.0f;
  // logits(x0=0) = (10, 0, -30): class 0. x0=1 -> (-10, 0, -10): class 1.
  // x0=2 -> (-30, 0, 10): class 2.
  const float loss = NidLoss(hidden, head, corrupted).item();
  EXPECT_LT(loss, 0.01f);

  // A random head does much worse.
  Linear random_head(d, 3, rng2);
  EXPECT_GT(NidLoss(hidden, random_head, corrupted).item(), loss + 0.2f);
}

TEST(MaskedMeanPoolTest, IgnoresPadding) {
  SeqBatch batch = MakeBatchFromSequences({{1, 2}, {3, 4, 5, 6}}, 4);
  Tensor hidden = Tensor::Zeros(Shape{2, 4, 2});
  // Row 0: valid positions 0,1 hold (1,1) and (3,3); pads hold junk.
  hidden.data()[0] = 1, hidden.data()[1] = 1;
  hidden.data()[2] = 3, hidden.data()[3] = 3;
  hidden.data()[4] = 99, hidden.data()[5] = 99;  // Padding junk.
  Tensor pooled = MaskedMeanPool(hidden, batch);
  EXPECT_FLOAT_EQ(pooled.at({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(pooled.at({0, 1}), 2.0f);
}

TEST(RclLossTest, MatchingPairsBeatMismatched) {
  SeqBatch batch = MakeBatchFromSequences(
      {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}, 4);
  Rng rng(14);
  Tensor hidden = Tensor::Randn(Shape{3, 4, 6}, rng);
  // Corrupted = original (perfect robustness) vs shuffled users.
  Tensor matched = hidden.Clone();
  Tensor mismatched = Tensor::Zeros(Shape{3, 4, 6});
  // Rotate the rows so user u pairs with user u+1's sequence.
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < 24; ++i) {
      mismatched.data()[b * 24 + i] = hidden.data()[((b + 1) % 3) * 24 + i];
    }
  }
  const float good = RclLoss(hidden, matched, batch, 0.15f).item();
  const float bad = RclLoss(hidden, mismatched, batch, 0.15f).item();
  EXPECT_LT(good, bad);
}

TEST(RclLossTest, GradCheck) {
  SeqBatch batch = MakeBatchFromSequences({{1, 2, 3}, {4, 5, 6}}, 3);
  Rng rng(15);
  Tensor hidden = Tensor::Randn(Shape{2, 3, 4}, rng, 0.7f, true);
  Tensor corrupted = Tensor::Randn(Shape{2, 3, 4}, rng, 0.7f, true);
  auto loss = [&] { return RclLoss(hidden, corrupted, batch, 0.3f); };
  testing::ExpectGradientsClose(loss, hidden, 1e-2f, 4e-2f);
  testing::ExpectGradientsClose(loss, corrupted, 1e-2f, 4e-2f);
}

TEST(GatherSequenceRepsTest, MapsPositionsAndPads) {
  SeqBatch batch = MakeBatchFromSequences({{5, 6}, {7, 8, 9}}, 3);
  Tensor reps = Tensor::FromVector(
      Shape{batch.num_unique(), 2},
      {1, 1, 2, 2, 3, 3, 4, 4, 5, 5});  // Unique: 5,6,7,8,9.
  Tensor seq = GatherSequenceReps(reps, batch.position_to_unique, 2, 3);
  EXPECT_EQ(seq.shape(), (Shape{2, 3, 2}));
  EXPECT_FLOAT_EQ(seq.at({0, 0, 0}), 1.0f);  // Item 5.
  EXPECT_FLOAT_EQ(seq.at({0, 1, 0}), 2.0f);  // Item 6.
  EXPECT_FLOAT_EQ(seq.at({0, 2, 0}), 0.0f);  // Padding -> zero row.
  EXPECT_FLOAT_EQ(seq.at({1, 2, 1}), 5.0f);  // Item 9.
}

}  // namespace
}  // namespace pmmrec
