// End-to-end determinism of training under the parallel backend.
//
// Runs two full FitModel sessions on the same synthetic dataset with the
// same seed — one at threads = 1 (exact serial path), one at threads = 4 —
// and requires the per-epoch validation HR@10 series and the final train
// loss to match exactly. This is the user-facing guarantee documented in
// README "Performance": PMMREC_NUM_THREADS changes wall-clock time only,
// never results.

#include <vector>

#include "core/pmmrec.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

FitResult FitAtThreads(int64_t threads) {
  NumThreadsGuard guard(threads);
  BenchmarkSuite suite = BuildBenchmarkSuite(0.25, 11);
  const Dataset& ds = suite.sources[0];
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  FitOptions opts;
  opts.max_epochs = 2;
  opts.eval_users = 40;
  opts.seed = 7;
  return FitModel(model, ds, opts);
}

TEST(ParallelDeterminismTest, TwoEpochFitBitIdenticalAcrossThreadCounts) {
  const FitResult serial = FitAtThreads(1);
  const FitResult parallel = FitAtThreads(4);

  ASSERT_EQ(serial.epochs_run, 2);
  ASSERT_EQ(parallel.epochs_run, serial.epochs_run);
  ASSERT_EQ(parallel.val_hr10_per_epoch.size(),
            serial.val_hr10_per_epoch.size());
  for (size_t e = 0; e < serial.val_hr10_per_epoch.size(); ++e) {
    EXPECT_EQ(parallel.val_hr10_per_epoch[e], serial.val_hr10_per_epoch[e])
        << "validation HR@10 diverged at epoch " << e;
  }
  EXPECT_EQ(parallel.final_train_loss, serial.final_train_loss);
  EXPECT_EQ(parallel.best_val_hr10, serial.best_val_hr10);
  EXPECT_EQ(parallel.best_epoch, serial.best_epoch);
}

// The num_threads knob on FitOptions must behave exactly like the global
// setting: a run configured with num_threads = 3 matches a serial run.
TEST(ParallelDeterminismTest, FitOptionsThreadKnobMatchesSerial) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  FitOptions opts;
  opts.max_epochs = 1;
  opts.eval_users = 24;
  opts.seed = 7;

  NumThreadsGuard restore(GetNumThreads());

  SetNumThreads(1);
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel serial_model(config, 42);
  const FitResult serial = FitModel(serial_model, ds, opts);

  opts.num_threads = 3;
  PMMRecModel parallel_model(config, 42);
  const FitResult parallel = FitModel(parallel_model, ds, opts);
  EXPECT_EQ(GetNumThreads(), 3);

  ASSERT_EQ(parallel.val_hr10_per_epoch.size(),
            serial.val_hr10_per_epoch.size());
  for (size_t e = 0; e < serial.val_hr10_per_epoch.size(); ++e) {
    EXPECT_EQ(parallel.val_hr10_per_epoch[e], serial.val_hr10_per_epoch[e]);
  }
  EXPECT_EQ(parallel.final_train_loss, serial.final_train_loss);
}

}  // namespace
}  // namespace pmmrec
