// Tests for the synthetic world generator, dataset protocol and batching.

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "data/generator.h"

namespace pmmrec {
namespace {

PlatformConfig SmallConfig() {
  PlatformConfig config;
  config.name = "Test_Food";
  config.platform = "Bili";
  config.clusters = {0, 1};
  config.n_items = 40;
  config.n_users = 60;
  config.min_seq_len = 4;
  config.max_seq_len = 9;
  config.seed = 5;
  return config;
}

TEST(SyntheticWorldTest, TransitionKernelIsRowStochastic) {
  SyntheticWorld world(WorldConfig{});
  for (int32_t c = 0; c < world.config().n_clusters; ++c) {
    double row_sum = 0.0;
    for (int32_t to = 0; to < world.config().n_clusters; ++to) {
      const float p = world.TransitionProb(c, to);
      EXPECT_GE(p, 0.0f);
      row_sum += p;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-4);
    // Stickiness dominates the background.
    EXPECT_GE(world.TransitionProb(c, c), world.config().kernel_stickiness);
  }
}

TEST(SyntheticWorldTest, DeterministicGivenSeed) {
  WorldConfig wc;
  wc.seed = 123;
  SyntheticWorld w1(wc);
  SyntheticWorld w2(wc);
  EXPECT_EQ(w1.word_directions(), w2.word_directions());
  EXPECT_EQ(w1.ClusterCenter(3), w2.ClusterCenter(3));
}

TEST(GeneratorTest, SchemaAndDeterminism) {
  SyntheticWorld world(WorldConfig{});
  DatasetGenerator gen(&world);
  Dataset a = gen.Generate(SmallConfig());
  Dataset b = gen.Generate(SmallConfig());
  EXPECT_EQ(a.num_items(), 40);
  EXPECT_EQ(a.num_users(), 60);
  EXPECT_EQ(a.text_len, world.config().text_len);
  EXPECT_EQ(a.n_patches, world.config().n_patches);
  EXPECT_EQ(a.sequences, b.sequences);  // Deterministic.
  for (const auto& item : a.items) {
    EXPECT_EQ(static_cast<int32_t>(item.tokens.size()), a.text_len);
    EXPECT_EQ(static_cast<int32_t>(item.patches.size()),
              a.n_patches * a.patch_dim);
    for (int32_t tok : item.tokens) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, a.text_vocab_size);
    }
  }
}

TEST(GeneratorTest, SequencesRespectLengthAndCatalogue) {
  SyntheticWorld world(WorldConfig{});
  DatasetGenerator gen(&world);
  PlatformConfig config = SmallConfig();
  Dataset ds = gen.Generate(config);
  for (const auto& seq : ds.sequences) {
    EXPECT_GE(static_cast<int32_t>(seq.size()), config.min_seq_len);
    EXPECT_LE(static_cast<int32_t>(seq.size()), config.max_seq_len);
    for (int32_t item : seq) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, ds.num_items());
    }
    for (size_t i = 1; i < seq.size(); ++i) {
      // Immediate repeats are resampled once and thus rare; allow them,
      // but the whole sequence must not be one item.
    }
  }
}

TEST(GeneratorTest, ItemsOnlyFromConfiguredClusters) {
  SyntheticWorld world(WorldConfig{});
  DatasetGenerator gen(&world);
  Dataset ds = gen.Generate(SmallConfig());
  for (const auto& item : ds.items) {
    EXPECT_TRUE(item.true_cluster == 0 || item.true_cluster == 1);
  }
}

TEST(GeneratorTest, TransitionsFollowSharedKernel) {
  // Empirical cluster-transition counts should correlate with the world
  // kernel (restricted to the platform clusters).
  WorldConfig wc;
  SyntheticWorld world(wc);
  DatasetGenerator gen(&world);
  PlatformConfig config = SmallConfig();
  config.n_users = 800;
  Dataset ds = gen.Generate(config);

  double counts[2][2] = {{0, 0}, {0, 0}};
  for (const auto& seq : ds.sequences) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const int32_t a = ds.items[static_cast<size_t>(seq[i])].true_cluster;
      const int32_t b =
          ds.items[static_cast<size_t>(seq[i + 1])].true_cluster;
      counts[a][b] += 1.0;
    }
  }
  for (int i = 0; i < 2; ++i) {
    const double total = counts[i][0] + counts[i][1];
    ASSERT_GT(total, 100.0);
    const double p0 = world.TransitionProb(i, 0) /
                      (world.TransitionProb(i, 0) + world.TransitionProb(i, 1));
    EXPECT_NEAR(counts[i][0] / total, p0, 0.05);
  }
}

TEST(GeneratorTest, NoisyPlatformsHaveNoisierImages) {
  SyntheticWorld world(WorldConfig{});
  DatasetGenerator gen(&world);
  PlatformConfig noisy = SmallConfig();
  noisy.image_noise = 0.9f;
  PlatformConfig clean = SmallConfig();
  clean.name = "Clean_Food";
  clean.platform = "HM";
  clean.image_noise = 0.2f;

  // Within-cluster patch variance should be larger on the noisy platform.
  auto within_cluster_variance = [&](const Dataset& ds) {
    double mean = 0.0;
    int64_t n = 0;
    std::vector<double> sums(static_cast<size_t>(ds.items[0].patches.size()),
                             0.0);
    for (const auto& item : ds.items) {
      if (item.true_cluster != 0) continue;
      for (size_t j = 0; j < item.patches.size(); ++j) {
        sums[j] += item.patches[j];
      }
      ++n;
    }
    for (auto& s : sums) s /= n;
    for (const auto& item : ds.items) {
      if (item.true_cluster != 0) continue;
      for (size_t j = 0; j < item.patches.size(); ++j) {
        const double diff = item.patches[j] - sums[j];
        mean += diff * diff;
      }
    }
    return mean / (n * static_cast<double>(sums.size()));
  };
  const double noisy_var = within_cluster_variance(gen.Generate(noisy));
  const double clean_var = within_cluster_variance(gen.Generate(clean));
  EXPECT_GT(noisy_var, clean_var);
}

TEST(DatasetTest, LeaveOneOutProtocol) {
  Dataset ds;
  ds.sequences = {{0, 1, 2, 3, 4}, {5, 6, 7}};
  ds.items.resize(8);
  EXPECT_EQ(ds.TrainSeq(0), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(ds.ValidationTarget(0), 3);
  EXPECT_EQ(ds.TestTarget(0), 4);
  EXPECT_EQ(ds.TestPrefix(0), (std::vector<int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(ds.ValidationPrefix(1), (std::vector<int32_t>{5}));
  EXPECT_EQ(ds.num_actions(), 8);
  EXPECT_DOUBLE_EQ(ds.avg_seq_len(), 4.0);
}

TEST(DatasetTest, SparsityMatchesFormula) {
  Dataset ds;
  ds.items.resize(10);
  ds.sequences = {{0, 1, 2}, {3, 4, 5}};
  EXPECT_NEAR(ds.sparsity(), 1.0 - 6.0 / 20.0, 1e-9);
}

TEST(DatasetTest, TrainItemCounts) {
  Dataset ds;
  ds.items.resize(5);
  ds.sequences = {{0, 0, 1, 2, 3}, {0, 4, 2}};
  // Train parts: {0,0,1} and {0}.
  const auto counts = ds.TrainItemCounts();
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
}

TEST(DatasetTest, FuseDatasetsOffsetsItems) {
  SyntheticWorld world(WorldConfig{});
  DatasetGenerator gen(&world);
  Dataset a = gen.Generate(SmallConfig());
  PlatformConfig cb = SmallConfig();
  cb.name = "Other";
  cb.n_items = 30;
  Dataset b = gen.Generate(cb);
  Dataset fused = FuseDatasets({&a, &b}, "fused");
  EXPECT_EQ(fused.num_items(), a.num_items() + b.num_items());
  EXPECT_EQ(fused.num_users(), a.num_users() + b.num_users());
  // First sequences identical, later ones offset.
  EXPECT_EQ(fused.sequences[0], a.sequences[0]);
  const auto& shifted =
      fused.sequences[static_cast<size_t>(a.num_users())];
  for (size_t i = 0; i < shifted.size(); ++i) {
    EXPECT_EQ(shifted[i], b.sequences[0][i] + a.num_items());
  }
  // Content preserved.
  EXPECT_EQ(fused.items[static_cast<size_t>(a.num_items())].tokens,
            b.items[0].tokens);
}

TEST(DatasetTest, ColdStartCases) {
  Dataset ds;
  ds.items.resize(6);
  // Item 5 appears once in training; items 0-2 appear often.
  ds.sequences = {{0, 1, 2, 0, 1}, {1, 5, 0, 2, 1}, {2, 0, 1, 0, 2}};
  const auto cases = BuildColdStartCases(ds, 2);
  ASSERT_FALSE(cases.empty());
  bool found_cold5 = false;
  for (const auto& c : cases) {
    EXPECT_FALSE(c.prefix.empty());
    if (c.target == 5) {
      found_cold5 = true;
      EXPECT_EQ(c.prefix, (std::vector<int32_t>{1}));
    }
  }
  EXPECT_TRUE(found_cold5);
}

TEST(BatcherTest, TrainBatchLayoutAndUniqueIndex) {
  Dataset ds;
  ds.items.resize(10);
  ds.sequences = {{1, 2, 3, 4, 5}, {2, 2, 6, 7, 8}};
  SeqBatch batch = MakeTrainBatch(ds, {0, 1}, 6);
  EXPECT_EQ(batch.batch_size, 2);
  EXPECT_EQ(batch.max_len, 6);
  EXPECT_EQ(batch.ItemAt(0, 0), 1);
  EXPECT_EQ(batch.ItemAt(0, 2), 3);
  EXPECT_EQ(batch.ItemAt(0, 3), -1);  // Train part has 3 items.
  EXPECT_EQ(batch.RowLength(0), 3);
  EXPECT_EQ(batch.RowLength(1), 3);
  // Unique items: {1, 2, 3, 6} (order of first appearance).
  EXPECT_EQ(batch.unique_items, (std::vector<int32_t>{1, 2, 3, 6}));
  EXPECT_EQ(batch.UniqueAt(1, 0), 1);  // Item 2 -> unique index 1.
  EXPECT_EQ(batch.UniqueAt(1, 1), 1);
  EXPECT_EQ(batch.UniqueAt(0, 0), 0);
}

TEST(BatcherTest, TruncatesToMostRecent) {
  Dataset ds;
  ds.items.resize(12);
  ds.sequences = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  SeqBatch batch = MakeTrainBatch(ds, {0}, 4);
  // Train part = {0..7}; most recent 4 = {4,5,6,7}.
  EXPECT_EQ(batch.ItemAt(0, 0), 4);
  EXPECT_EQ(batch.ItemAt(0, 3), 7);
}

TEST(BatcherTest, EpochGroupsCoverAllUsersOnce) {
  Dataset ds;
  ds.items.resize(4);
  for (int i = 0; i < 23; ++i) ds.sequences.push_back({0, 1, 2, 3});
  SequenceBatcher batcher(&ds, 5, 4);
  Rng rng(3);
  const auto groups = batcher.EpochUserGroups(rng);
  std::set<int64_t> seen;
  for (const auto& g : groups) {
    for (int64_t u : g) EXPECT_TRUE(seen.insert(u).second);
  }
  // 23 = 4 groups of 5 + one of 3 (>= 2, kept).
  EXPECT_EQ(groups.size(), 5u);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(BatcherTest, DropsSingletonTailGroup) {
  Dataset ds;
  ds.items.resize(4);
  for (int i = 0; i < 11; ++i) ds.sequences.push_back({0, 1, 2, 3});
  SequenceBatcher batcher(&ds, 5, 4);
  Rng rng(3);
  const auto groups = batcher.EpochUserGroups(rng);
  EXPECT_EQ(groups.size(), 2u);  // Tail of 1 dropped.
}

TEST(SuiteTest, BuildBenchmarkSuiteShape) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.25, 7);
  ASSERT_EQ(suite.sources.size(), 4u);
  ASSERT_EQ(suite.targets.size(), 10u);
  EXPECT_EQ(suite.sources[0].name, "Bili");
  EXPECT_EQ(suite.targets[6].name, "HM_Clothes");
  EXPECT_EQ(&suite.source("Kwai"), &suite.sources[1]);
  EXPECT_EQ(&suite.target("Amazon_Shoes"), &suite.targets[9]);
  // All datasets share one content schema (required for fusing/transfer).
  for (const auto& ds : suite.targets) {
    EXPECT_EQ(ds.text_vocab_size, suite.sources[0].text_vocab_size);
    EXPECT_EQ(ds.n_patches, suite.sources[0].n_patches);
    for (const auto& seq : ds.sequences) {
      ASSERT_GE(seq.size(), 3u);
    }
  }
}

TEST(SuiteTest, SubdomainsUseParentPlatformStyle) {
  // Two datasets of the same platform share the style; different platforms
  // differ. We verify via the deterministic style construction: items of
  // the same cluster on the same platform are closer in patch space than
  // across platforms.
  BenchmarkSuite suite = BuildBenchmarkSuite(0.25, 7);
  const Dataset& bili_food = suite.target("Bili_Food");
  const Dataset& kwai_food = suite.target("Kwai_Food");
  EXPECT_EQ(bili_food.platform, "Bili");
  EXPECT_EQ(kwai_food.platform, "Kwai");
}

}  // namespace
}  // namespace pmmrec
