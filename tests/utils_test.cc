// Tests for the utils module: RNG statistics/determinism, table printing,
// binary IO, status.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "utils/io.h"
#include "utils/rng.h"
#include "utils/status.h"
#include "utils/table.h"

namespace pmmrec {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Rng c(43);
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(RngTest, UniformFloatRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.UniformFloat();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
  for (int i = 0; i < 100; ++i) {
    const float u = rng.UniformFloat(-2.0f, 3.0f);
    EXPECT_GE(u, -2.0f);
    EXPECT_LT(u, 3.0f);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LT(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NormalFloat();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(4);
  const std::vector<float> weights = {1.0f, 3.0f, 0.0f, 6.0f};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[static_cast<size_t>(rng.Categorical(weights))]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ZipfIsSkewedTowardHead) {
  Rng rng(5);
  int head = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2f) < 10) ++head;
  }
  EXPECT_GT(head, n / 2);  // Top-10 of 100 gets most mass.
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 8);
    std::set<int64_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), 8u);
    for (int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
  // Full sample.
  const auto all = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(std::set<int64_t>(all.begin(), all.end()).size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(8);
  Rng b = a.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::IoError("disk on fire");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "disk on fire");
  EXPECT_EQ(err.ToString(), "IoError: disk on fire");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(TableTest, FormatsAlignedGrid) {
  Table t({"Dataset", "HR@10"});
  t.AddRow({"Bili", "5.49"});
  t.AddSeparator();
  t.AddRow({"Kwai_Cartoon", "16.42"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Dataset      | HR@10 |"), std::string::npos);
  EXPECT_NE(s.find("| Bili         | 5.49  |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3u);  // Incl. separator sentinel.
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fmt(3.0, 0), "3");
  EXPECT_EQ(Table::Fmt(-1.5, 1), "-1.5");
}

TEST(BinaryIoTest, RoundTripPrimitives) {
  BinaryWriter w;
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(1234567890123ULL);
  w.WriteI64(-42);
  w.WriteFloat(2.5f);
  w.WriteString("hello");
  const float floats[] = {1.0f, 2.0f, 3.0f};
  w.WriteFloats(floats, 3);

  BinaryReader r(w.buffer());
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  float f;
  std::string s;
  float out[3];
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadFloat(&f).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadFloats(out, 3).ok());
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 1234567890123ULL);
  EXPECT_EQ(i64, -42);
  EXPECT_FLOAT_EQ(f, 2.5f);
  EXPECT_EQ(s, "hello");
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, UnderflowReportsCorruption) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer());
  uint64_t u64;
  EXPECT_FALSE(r.ReadU64(&u64).ok());
}

TEST(BinaryIoTest, StringLengthGuard) {
  BinaryWriter w;
  w.WriteU64(1000000);  // Claims a giant string with no payload.
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

TEST(BinaryIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pmmrec_io_test.bin";
  BinaryWriter w;
  w.WriteString("persist me");
  ASSERT_TRUE(w.SaveToFile(path).ok());
  BinaryReader r({});
  ASSERT_TRUE(BinaryReader::LoadFromFile(path, &r).ok());
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "persist me");
  EXPECT_FALSE(BinaryReader::LoadFromFile(path + ".nope", &r).ok());
}

}  // namespace
}  // namespace pmmrec
