// Versioned-serving-snapshot suite (DESIGN.md "Versioned serving
// snapshots"): snapshot lifetime under the pin/publish/retire protocol,
// catalogue hot-add incrementality and reachability, live-vs-strict
// bitwise identity across every serving mode, multi-domain brokering, and
// a live broker serving bit-exact responses while a LiveUpdater publishes
// new versions from another thread. Runs under the `live` ctest label
// (and in CI under tsan and asan on top of the default config).

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "core/serving.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "serve/broker.h"
#include "tests/test_util.h"
#include "utils/trace.h"

namespace pmmrec {
namespace {

// Deterministic row-independent stand-in encoder for cache-level tests:
// row id -> [0.25*id + 0, ..., 0.25*id + 3]. Optionally counts the rows
// it is asked to encode, which is how the hot-add tests prove the reuse
// path skipped the base snapshot's fully-covered chunks.
ItemTableCache::ChunkEncoder CountingEncoder(std::atomic<int64_t>* rows) {
  return [rows](const std::vector<int32_t>& ids) {
    if (rows != nullptr) {
      rows->fetch_add(static_cast<int64_t>(ids.size()),
                      std::memory_order_relaxed);
    }
    const int64_t n = static_cast<int64_t>(ids.size());
    Tensor t = Tensor::Zeros(Shape{n, 4});
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t d = 0; d < 4; ++d) {
        t.data()[i * 4 + d] =
            0.25f * static_cast<float>(ids[static_cast<size_t>(i)]) +
            static_cast<float>(d);
      }
    }
    return std::vector<Tensor>{std::move(t)};
  };
}

uint64_t CounterValue(const std::string& name) {
  for (const auto& [counter, value] : trace::CounterSnapshot()) {
    if (counter == name) return value;
  }
  return 0;
}

uint64_t HistogramCount(const std::string& name) {
  for (const trace::HistogramStats& h : trace::HistogramSnapshot()) {
    if (h.name == name) return h.count;
  }
  return 0;
}

TEST(LiveServeTest, RetiredSnapshotFreedOnlyAfterLastPinDrops) {
  // Lifecycle counters (serve.snapshot.*) register at epoch level.
  trace::LevelGuard trace_guard(trace::Level::kEpoch);
  ItemTableCache cache;
  ASSERT_TRUE(cache.Ensure(10, CountingEncoder(nullptr)));

  // An in-flight batch: pinned v1, still being answered.
  std::shared_ptr<const ServingSnapshot> pin = cache.Pin();
  ASSERT_NE(pin, nullptr);
  std::weak_ptr<const ServingSnapshot> watch = pin;
  const uint64_t v1 = pin->version;

  const uint64_t retired_before = CounterValue("serve.snapshot.retired");
  cache.Invalidate();
  ASSERT_TRUE(cache.Ensure(10, CountingEncoder(nullptr)));  // publishes v2

  // v2 is current, but retiring v1 must not free it: the in-flight batch
  // still reads it. The shared_ptr refcount is the RCU grace period.
  EXPECT_EQ(cache.Pin()->version, v1 + 1);
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(CounterValue("serve.snapshot.retired"), retired_before);
  EXPECT_EQ(pin->version, v1);
  EXPECT_EQ(pin->num_items, 10);

  // The batch finishes: the last pin drops and only now is v1 freed.
  pin.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(CounterValue("serve.snapshot.retired"), retired_before + 1);
}

TEST(LiveServeTest, HotAddEncodesOnlyBoundaryChunkAndTail) {
  // Lifecycle counters (serve.snapshot.*) register at epoch level.
  trace::LevelGuard trace_guard(trace::Level::kEpoch);
  const auto no_finish = [](ServingSnapshot*) {};
  std::atomic<int64_t> rows{0};
  ItemTableCache cache;
  const std::shared_ptr<const ServingSnapshot> base =
      cache.Publish(100, CountingEncoder(&rows), no_finish);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(rows.load(), 100);

  // Hot-add 30 rows at the same param version. With kChunk = 64, the base
  // covers chunk [0, 64) fully and [64, 100) partially, so only the
  // boundary chunk plus the new tail — ids [64, 130) — may be re-encoded.
  const uint64_t hot_before = CounterValue("serve.snapshot.hot_add_rows");
  rows.store(0);
  const std::shared_ptr<const ServingSnapshot> grown =
      cache.Publish(130, CountingEncoder(&rows), no_finish);
  ASSERT_NE(grown, nullptr);
  EXPECT_EQ(rows.load(), 130 - ItemTableCache::kChunk);
  EXPECT_EQ(CounterValue("serve.snapshot.hot_add_rows"), hot_before + 30);
  EXPECT_EQ(grown->num_items, 130);
  EXPECT_EQ(grown->version, base->version + 1);
  EXPECT_EQ(base->num_items, 100);  // the retired snapshot is untouched

  // The incrementally built table is bitwise a from-scratch encode.
  ItemTableCache fresh;
  const std::shared_ptr<const ServingSnapshot> full =
      fresh.Publish(130, CountingEncoder(nullptr), no_finish);
  ASSERT_EQ(grown->table_data(0).size(), full->table_data(0).size());
  EXPECT_EQ(std::memcmp(grown->table_data(0).data(),
                        full->table_data(0).data(),
                        grown->table_data(0).size() * sizeof(float)),
            0);

  // Invalidate() (a model-identity change) must block row reuse: the next
  // publish re-encodes everything even though the catalogue only grew.
  cache.Invalidate();
  rows.store(0);
  const std::shared_ptr<const ServingSnapshot> rebuilt =
      cache.Publish(131, CountingEncoder(&rows), no_finish);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rows.load(), 131);
}

TEST(LiveServeTest, HotAddedItemServedFromTheNextSnapshot) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  Dataset ds = suite.sources[0];  // Mutable copy: the hot-add target.
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);

  const std::shared_ptr<const ServingSnapshot> v1 =
      model.PublishServingSnapshot();
  ASSERT_NE(v1, nullptr);
  const int64_t old_count = v1->num_items;

  // Clone item 7's content. Item encoding is row-independent, so the new
  // id's representation row — and therefore its score against any user —
  // must be bitwise its source's.
  ds.items.push_back(ds.items[7]);
  const int32_t new_id = static_cast<int32_t>(ds.num_items() - 1);
  const std::shared_ptr<const ServingSnapshot> v2 =
      model.PublishServingSnapshot();
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->num_items, old_count + 1);
  EXPECT_EQ(v2->version, v1->version + 1);
  EXPECT_EQ(v1->num_items, old_count);  // in-flight pins keep the old world

  const int64_t d = v2->width(0);
  EXPECT_EQ(std::memcmp(v2->table_data(0).data() + new_id * d,
                        v2->table_data(0).data() + 7 * d,
                        static_cast<size_t>(d) * sizeof(float)),
            0);

  // The new item is recommendable from v2 without any full re-encode:
  // ranked retrieval over the grown snapshot surfaces it with exactly its
  // source's score bits.
  const std::vector<int32_t> prefix = ds.TestPrefix(0);
  const auto ranked = model.RetrieveExactCandidatesOn(
      v2, std::span<const std::vector<int32_t>>(&prefix, 1), v2->num_items);
  ASSERT_EQ(ranked.size(), 1u);
  const float* source_score = nullptr;
  const float* added_score = nullptr;
  for (const ScoredId& entry : ranked[0]) {
    if (entry.id == 7) source_score = &entry.score;
    if (entry.id == new_id) added_score = &entry.score;
  }
  ASSERT_NE(source_score, nullptr);
  ASSERT_NE(added_score, nullptr);
  EXPECT_EQ(std::memcmp(added_score, source_score, sizeof(float)), 0);
}

TEST(LiveServeTest, LiveSnapshotMatchesStrictPathBitwiseAcrossServingModes) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  struct ModeSpec {
    const char* name;
    bool quant, ann, planned;
  };
  const ModeSpec kModes[] = {
      {"exact", false, false, false},  {"int8", true, false, false},
      {"ivf", false, true, false},     {"ivf+int8", true, true, false},
      {"planned", false, false, true},
  };
  for (const ModeSpec& mode : kModes) {
    SCOPED_TRACE(mode.name);
    PMMRecConfig config = PMMRecConfig::FromDataset(ds);
    config.quantized_serving = mode.quant;
    config.ann_serving = mode.ann;
    config.planned_inference = mode.planned;
    PMMRecModel model(config, 42);
    model.AttachDataset(&ds);
    const auto prefixes = test::MixedPrefixes(ds, 5);
    const size_t n =
        prefixes.size() * static_cast<size_t>(ds.num_items());

    // Strict references through the legacy entry points (live encoder,
    // model plan cache, global version policing).
    std::vector<float> want(n);
    model.ScoreUsersBatched(prefixes, want.data());
    const auto want_retrieved = model.RetrieveCandidates(prefixes, 15);
    std::vector<std::vector<ScoredId>> want_quant;
    if (mode.quant) want_quant = model.ScoreUsersCandidates(prefixes);

    const std::shared_ptr<const ServingSnapshot> snap =
        model.PublishServingSnapshot();
    ASSERT_NE(snap, nullptr);
    ASSERT_NE(snap->user_encoder, nullptr);  // live flavour
    EXPECT_EQ(snap->quantized, mode.quant);
    EXPECT_EQ(snap->ann, mode.ann);

    const auto expect_rows_bitwise =
        [](const std::vector<std::vector<ScoredId>>& got,
           const std::vector<std::vector<ScoredId>>& expected,
           const std::string& what) {
          ASSERT_EQ(got.size(), expected.size()) << what;
          for (size_t i = 0; i < got.size(); ++i) {
            test::ExpectBitwise(got[i], expected[i],
                                what + " row " + std::to_string(i));
          }
        };

    // The self-contained snapshot path reproduces every strict result
    // bit for bit at the same param version.
    std::vector<float> got(n);
    model.ScoreUsersBatchedOn(snap, prefixes, got.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0);
    expect_rows_bitwise(model.RetrieveCandidatesOn(snap, prefixes, 15),
                        want_retrieved, "retrieve");
    if (mode.quant) {
      expect_rows_bitwise(model.ScoreUsersCandidatesOn(snap, prefixes),
                          want_quant, "quant");
    }

    // A request admitted under vN is answered from vN: stepping the live
    // parameters must not change one bit of what the pinned snapshot
    // serves, in any mode.
    test::TrainOneStep(model, ds, config.max_seq_len);
    std::vector<float> after(n);
    model.ScoreUsersBatchedOn(snap, prefixes, after.data());
    EXPECT_EQ(std::memcmp(after.data(), want.data(), n * sizeof(float)), 0);
    expect_rows_bitwise(model.RetrieveCandidatesOn(snap, prefixes, 15),
                        want_retrieved, "retrieve after step");
    if (mode.quant) {
      expect_rows_bitwise(model.ScoreUsersCandidatesOn(snap, prefixes),
                          want_quant, "quant after step");
    }
  }
}

TEST(LiveServeTest, MultiDomainBrokerRoutesAndExportsPerDomainLatency) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel food(config, 42);
  PMMRecModel sport(config, 43);  // Different seed: a genuinely distinct model.
  food.AttachDataset(&ds);
  sport.AttachDataset(&ds);

  serve::BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.max_wait_us = 100;
  serve::RequestBroker broker({{"food", &food}, {"sport", &sport}}, options);
  ASSERT_EQ(broker.num_domains(), 2);
  EXPECT_EQ(broker.domain_name(0), "food");
  EXPECT_EQ(broker.domain_name(1), "sport");

  const uint64_t food_before =
      HistogramCount("serve.latency_us[domain=food]");
  const uint64_t sport_before =
      HistogramCount("serve.latency_us[domain=sport]");

  // Same prefixes into both domains through the one queue: each response
  // must carry its domain, a pinned snapshot version, and exactly its own
  // model's serial top-K.
  const auto prefixes = test::MixedPrefixes(ds, 6);
  for (const auto& prefix : prefixes) {
    for (int64_t domain = 0; domain < 2; ++domain) {
      serve::Request request;
      request.prefix = prefix;
      request.topk = 10;
      request.domain = domain;
      const serve::Response got = broker.Submit(std::move(request)).get();
      ASSERT_EQ(got.status, serve::ServeStatus::kOk);
      EXPECT_EQ(got.domain, domain);
      EXPECT_GT(got.snapshot_version, 0u);
      PMMRecModel& target = domain == 0 ? food : sport;
      test::ExpectBitwise(
          got.items, test::SerialTopK(target, prefix, 10),
          std::string("domain ") + broker.domain_name(domain));
    }
  }

  // One latency observation per served response, tagged by domain.
  EXPECT_EQ(HistogramCount("serve.latency_us[domain=food]"),
            food_before + prefixes.size());
  EXPECT_EQ(HistogramCount("serve.latency_us[domain=sport]"),
            sport_before + prefixes.size());

  // Out-of-range domains are rejected at submit, not scored.
  serve::Request bad;
  bad.prefix = prefixes[0];
  bad.topk = 5;
  bad.domain = 2;
  EXPECT_EQ(broker.Submit(std::move(bad)).get().status,
            serve::ServeStatus::kInvalidRequest);
  EXPECT_EQ(broker.stats().rejected_invalid, 1u);
}

TEST(LiveServeTest, LiveBrokerStaysBitwiseExactUnderConcurrentUpdates) {
  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  Dataset ds = suite.sources[0];  // Mutable copy: the updater hot-adds into it.
  const PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);

  serve::BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.max_wait_us = 100;
  options.live_updates = true;
  serve::RequestBroker broker(&model, options);

  // Every published snapshot stays pinned here so responses can be
  // verified after the fact against the exact version they were answered
  // from. The updater thread is the only writer.
  std::mutex mu;
  std::map<uint64_t, std::shared_ptr<const ServingSnapshot>> published;
  {
    std::shared_ptr<const ServingSnapshot> initial =
        model.item_table_cache().Pin();
    ASSERT_NE(initial, nullptr);
    published[initial->version] = std::move(initial);
  }

  LiveUpdater::Options uopts;
  uopts.max_seq_len = config.max_seq_len;
  LiveUpdater updater(&model, &ds, uopts);

  std::atomic<bool> stop{false};
  std::thread update_thread([&] {
    // Trains + publishes, with a catalogue hot-add riding every third
    // publish, while the broker keeps serving. Capped so the test stays
    // bounded on a single core.
    for (int i = 0; i < 12 && !stop.load(std::memory_order_relaxed); ++i) {
      std::shared_ptr<const ServingSnapshot> snap;
      if (i % 3 == 2) {
        ds.items.push_back(ds.items[static_cast<size_t>(i)]);
        snap = updater.Publish();
      } else {
        snap = updater.Step();
      }
      ASSERT_NE(snap, nullptr);
      std::lock_guard<std::mutex> lock(mu);
      published[snap->version] = std::move(snap);
    }
  });

  const auto probe_prefixes = test::MixedPrefixes(ds, 6);
  struct Served {
    std::vector<int32_t> prefix;
    serve::Response response;
  };
  std::vector<Served> served;
  for (int i = 0; i < 30; ++i) {
    const std::vector<int32_t>& prefix =
        probe_prefixes[static_cast<size_t>(i) % probe_prefixes.size()];
    serve::Response response = broker.Recommend(prefix, 10);
    ASSERT_EQ(response.status, serve::ServeStatus::kOk);
    served.push_back({prefix, std::move(response)});
  }
  stop.store(true, std::memory_order_relaxed);
  update_thread.join();
  broker.Shutdown();

  // Each response must be bitwise what its pinned version serves — the
  // live snapshot is self-contained, so this reproduces exactly even
  // though the live parameters have long moved on.
  ASSERT_GE(published.size(), 2u) << "updater published nothing";
  for (size_t i = 0; i < served.size(); ++i) {
    const Served& s = served[i];
    const auto it = published.find(s.response.snapshot_version);
    ASSERT_NE(it, published.end())
        << "request " << i << " served from an unknown version "
        << s.response.snapshot_version;
    const std::shared_ptr<const ServingSnapshot>& snap = it->second;
    const int64_t limit = std::min<int64_t>(
        10 + static_cast<int64_t>(s.prefix.size()), snap->num_items);
    const auto ranked = model.RetrieveCandidatesOn(
        snap, std::span<const std::vector<int32_t>>(&s.prefix, 1), limit);
    ASSERT_EQ(ranked.size(), 1u);
    test::ExpectBitwise(s.response.items,
                        TopKFromRanked(ranked[0], 10, s.prefix),
                        "request " + std::to_string(i) + " at v" +
                            std::to_string(s.response.snapshot_version));
  }
}

}  // namespace
}  // namespace pmmrec
