// Numerical gradient verification for every differentiable op in the
// tensor library. These tests are the foundation the whole reproduction
// rests on: if they pass, training dynamics are trustworthy.

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/gradcheck.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace pmmrec {
namespace {

using testing::ExpectGradientsClose;

class GradCheckTest : public ::testing::Test {
 protected:
  Rng rng_{1234};
};

TEST_F(GradCheckTest, AddSameShape) {
  Tensor a = Tensor::Randn(Shape{3, 4}, rng_, 1.0f, true);
  Tensor b = Tensor::Randn(Shape{3, 4}, rng_, 1.0f, true);
  auto loss = [&] { return SumAll(Mul(Add(a, b), Add(a, b))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, AddBroadcastBias) {
  Tensor a = Tensor::Randn(Shape{5, 3}, rng_, 1.0f, true);
  Tensor b = Tensor::Randn(Shape{3}, rng_, 1.0f, true);
  auto loss = [&] { return SumAll(Square(Add(a, b))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, AddBroadcastMiddleDim) {
  Tensor a = Tensor::Randn(Shape{2, 3, 4}, rng_, 1.0f, true);
  Tensor b = Tensor::Randn(Shape{2, 1, 4}, rng_, 1.0f, true);
  auto loss = [&] { return SumAll(Square(Add(a, b))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, MulAndDivBroadcast) {
  Tensor a = Tensor::Randn(Shape{4, 3}, rng_, 1.0f, true);
  Tensor b = Tensor::RandUniform(Shape{4, 1}, rng_, 0.5f, 2.0f, true);
  auto loss = [&] { return SumAll(Div(Mul(a, b), AddScalar(Square(b), 1.0f))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, SubNegScalarOps) {
  Tensor a = Tensor::Randn(Shape{6}, rng_, 1.0f, true);
  Tensor b = Tensor::Randn(Shape{6}, rng_, 1.0f, true);
  auto loss = [&] {
    return SumAll(Square(Sub(MulScalar(a, 3.0f), AddScalar(Neg(b), 0.5f))));
  };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, ExpLogSqrt) {
  Tensor a = Tensor::RandUniform(Shape{5}, rng_, 0.5f, 2.0f, true);
  auto loss = [&] { return SumAll(Mul(Log(a), Sqrt(Exp(a)))); };
  ExpectGradientsClose(loss, a, 1e-3f);
}

TEST_F(GradCheckTest, MatMul2D) {
  Tensor a = Tensor::Randn(Shape{3, 4}, rng_, 0.5f, true);
  Tensor b = Tensor::Randn(Shape{4, 5}, rng_, 0.5f, true);
  auto loss = [&] { return SumAll(Square(MatMul(a, b))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, MatMulBatched) {
  Tensor a = Tensor::Randn(Shape{2, 3, 4}, rng_, 0.5f, true);
  Tensor b = Tensor::Randn(Shape{2, 4, 5}, rng_, 0.5f, true);
  auto loss = [&] { return SumAll(Square(MatMul(a, b))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, MatMulBroadcastRhs) {
  Tensor a = Tensor::Randn(Shape{2, 3, 4}, rng_, 0.5f, true);
  Tensor b = Tensor::Randn(Shape{4, 5}, rng_, 0.5f, true);
  auto loss = [&] { return SumAll(Square(MatMul(a, b))); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

// Same analytic-vs-finite-difference check, but with the kernels running
// on the parallel backend. Shapes are sized so the grain heuristic splits
// the work at 4 threads (tiny shapes would silently stay serial); the loss
// is a mixed-sign weighted sum so its float32 accumulation stays small and
// central differences remain accurate at these sizes.
TEST_F(GradCheckTest, MatMulBackwardParallelBackend) {
  NumThreadsGuard guard(4);
  Tensor a = Tensor::Randn(Shape{40, 32}, rng_, 0.5f, true);
  Tensor b = Tensor::Randn(Shape{32, 36}, rng_, 0.5f, true);
  Tensor w = Tensor::Randn(Shape{40, 36}, rng_, 1.0f);
  auto loss = [&] { return SumAll(Mul(MatMul(a, b), w)); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, MatMulBroadcastRhsBackwardParallelBackend) {
  NumThreadsGuard guard(4);
  Tensor a = Tensor::Randn(Shape{3, 24, 20}, rng_, 0.5f, true);
  Tensor b = Tensor::Randn(Shape{20, 28}, rng_, 0.5f, true);
  Tensor w = Tensor::Randn(Shape{3, 24, 28}, rng_, 1.0f);
  auto loss = [&] { return SumAll(Mul(MatMul(a, b), w)); };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, TransposeReshapeSlice) {
  Tensor a = Tensor::Randn(Shape{3, 4}, rng_, 1.0f, true);
  auto loss = [&] {
    Tensor t = TransposeLast2(a);                 // [4, 3]
    Tensor r = Reshape(t, Shape{2, 6});
    Tensor s = Slice(r, 1, 1, 4);                 // [2, 4]
    return SumAll(Square(s));
  };
  ExpectGradientsClose(loss, a);
}

TEST_F(GradCheckTest, ConcatAndSelectRows) {
  Tensor a = Tensor::Randn(Shape{3, 2}, rng_, 1.0f, true);
  Tensor b = Tensor::Randn(Shape{2, 2}, rng_, 1.0f, true);
  const std::vector<int32_t> rows = {0, 4, 4, 2};
  auto loss = [&] {
    Tensor c = Concat({a, b}, 0);  // [5, 2]
    return SumAll(Square(SelectRows(c, rows)));
  };
  ExpectGradientsClose(loss, a);
  ExpectGradientsClose(loss, b);
}

TEST_F(GradCheckTest, Activations) {
  Tensor a = Tensor::Randn(Shape{8}, rng_, 1.5f, true);
  ExpectGradientsClose([&] { return SumAll(Square(Tanh(a))); }, a);
  ExpectGradientsClose([&] { return SumAll(Square(Sigmoid(a))); }, a);
  ExpectGradientsClose([&] { return SumAll(Square(Gelu(a))); }, a, 1e-2f,
                       4e-2f);
}

TEST_F(GradCheckTest, ReluAwayFromKink) {
  // Keep values away from 0 so finite differences are valid.
  Tensor a = Tensor::FromVector(Shape{4}, {-1.5f, -0.7f, 0.8f, 2.0f}, true);
  ExpectGradientsClose([&] { return SumAll(Square(Relu(a))); }, a, 1e-3f);
}

TEST_F(GradCheckTest, SoftmaxAndLogSoftmax) {
  Tensor a = Tensor::Randn(Shape{3, 5}, rng_, 1.0f, true);
  Tensor w = Tensor::Randn(Shape{3, 5}, rng_, 1.0f);
  ExpectGradientsClose([&] { return SumAll(Mul(Softmax(a), w)); }, a, 1e-2f,
                       3e-2f);
  ExpectGradientsClose([&] { return SumAll(Mul(LogSoftmax(a), w)); }, a,
                       1e-2f, 3e-2f);
}

TEST_F(GradCheckTest, Reductions) {
  Tensor a = Tensor::Randn(Shape{3, 4, 2}, rng_, 1.0f, true);
  ExpectGradientsClose([&] { return MeanAll(Square(a)); }, a);
  ExpectGradientsClose(
      [&] { return SumAll(Square(Sum(a, 1, false))); }, a);
  ExpectGradientsClose(
      [&] { return SumAll(Square(Mean(a, 0, true))); }, a);
}

TEST_F(GradCheckTest, EmbeddingLookup) {
  Tensor weight = Tensor::Randn(Shape{6, 3}, rng_, 1.0f, true);
  const std::vector<int32_t> indices = {1, 4, 1, 0};
  auto loss = [&] { return SumAll(Square(EmbeddingLookup(weight, indices))); };
  ExpectGradientsClose(loss, weight);
}

TEST_F(GradCheckTest, LayerNorm) {
  Tensor x = Tensor::Randn(Shape{4, 6}, rng_, 1.0f, true);
  Tensor gamma = Tensor::RandUniform(Shape{6}, rng_, 0.5f, 1.5f, true);
  Tensor beta = Tensor::Randn(Shape{6}, rng_, 0.2f, true);
  Tensor w = Tensor::Randn(Shape{4, 6}, rng_, 1.0f);
  auto loss = [&] { return SumAll(Mul(LayerNormOp(x, gamma, beta), w)); };
  ExpectGradientsClose(loss, x, 1e-2f, 4e-2f);
  ExpectGradientsClose(loss, gamma, 1e-2f, 4e-2f);
  ExpectGradientsClose(loss, beta, 1e-2f, 4e-2f);
}

TEST_F(GradCheckTest, LayerNormBackwardParallelBackend) {
  NumThreadsGuard guard(4);
  Tensor x = Tensor::Randn(Shape{280, 24}, rng_, 1.0f, true);
  Tensor gamma = Tensor::RandUniform(Shape{24}, rng_, 0.5f, 1.5f, true);
  Tensor beta = Tensor::Randn(Shape{24}, rng_, 0.2f, true);
  Tensor w = Tensor::Randn(Shape{280, 24}, rng_, 1.0f);
  auto loss = [&] { return SumAll(Mul(LayerNormOp(x, gamma, beta), w)); };
  ExpectGradientsClose(loss, x, 3e-2f, 4e-2f);
  ExpectGradientsClose(loss, gamma, 3e-2f, 4e-2f);
  ExpectGradientsClose(loss, beta, 3e-2f, 4e-2f);
}

TEST_F(GradCheckTest, L2Normalize) {
  Tensor x = Tensor::Randn(Shape{3, 5}, rng_, 1.0f, true);
  Tensor w = Tensor::Randn(Shape{3, 5}, rng_, 1.0f);
  auto loss = [&] { return SumAll(Mul(L2Normalize(x), w)); };
  ExpectGradientsClose(loss, x, 1e-2f, 4e-2f);
}

TEST_F(GradCheckTest, CrossEntropy) {
  Tensor logits = Tensor::Randn(Shape{5, 4}, rng_, 1.0f, true);
  const std::vector<int32_t> targets = {0, 3, -1, 2, 1};  // One ignored.
  auto loss = [&] { return CrossEntropy(logits, targets, -1); };
  ExpectGradientsClose(loss, logits, 1e-2f, 3e-2f);
}

TEST_F(GradCheckTest, Conv1dCausal) {
  Tensor x = Tensor::Randn(Shape{2, 6, 3}, rng_, 0.7f, true);
  Tensor w = Tensor::Randn(Shape{3, 3, 4}, rng_, 0.5f, true);
  Tensor b = Tensor::Randn(Shape{4}, rng_, 0.3f, true);
  for (int64_t dilation : {1, 2}) {
    auto loss = [&] {
      return SumAll(Square(Conv1dCausal(x, w, b, dilation)));
    };
    ExpectGradientsClose(loss, x);
    ExpectGradientsClose(loss, w);
    ExpectGradientsClose(loss, b);
  }
}

TEST_F(GradCheckTest, GradientAccumulatesAcrossSharedUse) {
  // A parameter used twice must receive the sum of both paths' gradients.
  Tensor a = Tensor::Randn(Shape{3}, rng_, 1.0f, true);
  auto loss = [&] { return SumAll(Mul(a, a)); };
  ExpectGradientsClose(loss, a);
}

TEST_F(GradCheckTest, DeepChain) {
  // A small MLP-like chain exercising many ops together.
  Tensor x = Tensor::Randn(Shape{4, 6}, rng_, 0.8f);
  Tensor w1 = Tensor::Randn(Shape{6, 8}, rng_, 0.4f, true);
  Tensor b1 = Tensor::Randn(Shape{8}, rng_, 0.1f, true);
  Tensor w2 = Tensor::Randn(Shape{8, 3}, rng_, 0.4f, true);
  auto loss = [&] {
    Tensor h = Gelu(Add(MatMul(x, w1), b1));
    Tensor out = Softmax(MatMul(h, w2));
    return MeanAll(Square(out));
  };
  ExpectGradientsClose(loss, w1, 1e-2f, 4e-2f);
  ExpectGradientsClose(loss, b1, 1e-2f, 4e-2f);
  ExpectGradientsClose(loss, w2, 1e-2f, 4e-2f);
}

}  // namespace
}  // namespace pmmrec
