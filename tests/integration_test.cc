// End-to-end integration tests covering the full PMMRec pipeline on a
// reduced-scale benchmark suite: encoder pre-training -> recommendation
// pre-training on fused sources -> plug-and-play transfer -> fine-tuning.

#include <gtest/gtest.h>

#include "baselines/id_models.h"
#include "core/item_encoders.h"
#include "core/pmmrec.h"
#include "data/generator.h"
#include "utils/logging.h"

namespace pmmrec {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : suite_(BuildBenchmarkSuite(0.35, 17)) {}

  BenchmarkSuite suite_;
};

TEST_F(IntegrationTest, FullPipelineRunsAndTransfers) {
  ScopedLogSilencer silence;
  const Dataset fused = FuseDatasets(
      {&suite_.sources[0], &suite_.sources[1]}, "fused");
  const Dataset& target = suite_.targets[1];  // Bili_Movie.

  // 1. Encoder pre-training (the RoBERTa/CLIP substitute).
  PMMRecConfig config = PMMRecConfig::FromDataset(fused);
  PretrainedEncoders encoders(config, 11);
  EncoderPretrainConfig encoder_pt;
  encoder_pt.epochs = 4;
  encoders.Pretrain(fused, encoder_pt);

  // 2. Recommendation pre-training with the full objective.
  PMMRecModel pretrained(config, 42);
  pretrained.InitEncodersFrom(encoders.text(), encoders.vision());
  pretrained.SetPretrainingObjectives(true);
  FitOptions pre_opts;
  pre_opts.max_epochs = 3;
  pre_opts.eval_users = 40;
  const FitResult pre_fit = FitModel(pretrained, fused, pre_opts);
  EXPECT_GT(pre_fit.best_val_hr10, 0.0);
  pretrained.SetPretrainingObjectives(false);

  // 3. Transfer + fine-tune on the target; must run end-to-end and produce
  //    sane full-catalogue metrics.
  PMMRecConfig target_config = PMMRecConfig::FromDataset(target);
  PMMRecModel model(target_config, 43);
  model.InitEncodersFrom(encoders.text(), encoders.vision());
  model.TransferFrom(pretrained, TransferSetting::kFull);
  FitOptions ft_opts;
  ft_opts.max_epochs = 4;
  ft_opts.eval_users = -1;
  const FitResult ft = FitModel(model, target, ft_opts);
  EXPECT_GT(ft.epochs_run, 0);

  const RankingMetrics test = EvaluateRanking(model, target, EvalSplit::kTest);
  EXPECT_EQ(test.count, target.num_users());
  EXPECT_GE(test.Hr(50), test.Hr(20));
  EXPECT_GE(test.Hr(20), test.Hr(10));
  // Clearly above the random baseline (10 / #items).
  const double random_hr10 = 1000.0 / static_cast<double>(target.num_items());
  EXPECT_GT(test.Hr(10), random_hr10);
}

TEST_F(IntegrationTest, ColdStartContentBeatsId) {
  ScopedLogSilencer silence;
  const Dataset& ds = suite_.sources[3];  // Amazon.
  // TRULY cold items: at most one training occurrence, so the ID model's
  // embeddings for them are essentially random initialization.
  const auto cases = BuildColdStartCases(ds, 2);
  if (cases.size() < 5) GTEST_SKIP() << "too few cold cases at this scale";

  FitOptions opts;
  opts.max_epochs = 8;
  opts.eval_users = 60;

  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  SasRec sasrec(ds.num_items(), config.d_model, config.max_seq_len, 1);
  FitModel(sasrec, ds, opts);
  const RankingMetrics id_cold = EvaluateColdStart(sasrec, cases, 120);

  PMMRecModel pmmrec(config, 2);
  pmmrec.SetPretrainingObjectives(true);
  FitModel(pmmrec, ds, opts);
  const RankingMetrics mm_cold = EvaluateColdStart(pmmrec, cases, 120);

  // Both pipelines must produce valid cold-start metrics, and the content
  // model must rank cold items clearly above chance — it can score them
  // from text/images alone (paper Table VII). The ID-vs-content GAP is
  // only meaningful at full benchmark scale (bench_table7_cold_start);
  // at this reduced scale most of the catalogue is cold.
  EXPECT_GT(id_cold.count, 0);
  EXPECT_EQ(mm_cold.count, id_cold.count);
  const double random_hr10 = 1000.0 / static_cast<double>(ds.num_items());
  EXPECT_GT(mm_cold.Hr(10), random_hr10);
}

TEST_F(IntegrationTest, SingleModalityTransferEndToEnd) {
  ScopedLogSilencer silence;
  const Dataset& source = suite_.sources[0];
  const Dataset& target = suite_.targets[0];

  PMMRecConfig config = PMMRecConfig::FromDataset(source);
  PMMRecModel pretrained(config, 42);
  pretrained.SetPretrainingObjectives(true);
  FitOptions pre_opts;
  pre_opts.max_epochs = 2;
  pre_opts.eval_users = 40;
  FitModel(pretrained, source, pre_opts);

  for (auto [modality, setting] :
       {std::pair{ModalityMode::kTextOnly, TransferSetting::kTextOnly},
        std::pair{ModalityMode::kVisionOnly,
                  TransferSetting::kVisionOnly}}) {
    PMMRecConfig tc = PMMRecConfig::FromDataset(target);
    tc.modality = modality;
    PMMRecModel model(tc, 7);
    model.TransferFrom(pretrained, setting);
    FitOptions ft;
    ft.max_epochs = 3;
    ft.eval_users = -1;
    FitModel(model, target, ft);
    const RankingMetrics test =
        EvaluateRanking(model, target, EvalSplit::kTest);
    EXPECT_EQ(test.count, target.num_users());
    EXPECT_GE(test.Hr(50), test.Hr(10));
  }
}

}  // namespace
}  // namespace pmmrec
