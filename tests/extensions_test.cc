// Tests for the library extensions: CLI flag parsing, dataset
// serialization, and the rating-prediction head (the paper's future-work
// task).

#include <cmath>

#include <gtest/gtest.h>

#include "core/rating.h"
#include "data/generator.h"
#include "data/serialization.h"
#include "utils/flags.h"
#include "utils/logging.h"

namespace pmmrec {
namespace {

// --- FlagParser -------------------------------------------------------------

TEST(FlagParserTest, ParsesAllForms) {
  const char* argv[] = {"tool",       "train",      "--epochs=5",
                        "--lr",       "0.01",       "--verbose",
                        "--out=a.ckpt"};
  FlagParser flags(7, argv);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.GetInt("epochs", 0), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0), 0.01);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("out"), "a.ckpt");
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
}

TEST(FlagParserTest, ReportsUnqueriedFlags) {
  const char* argv[] = {"tool", "--known=1", "--typo=2"};
  FlagParser flags(3, argv);
  flags.GetInt("known", 0);
  const auto unqueried = flags.UnqueriedFlags();
  ASSERT_EQ(unqueried.size(), 1u);
  EXPECT_EQ(unqueried[0], "typo");
}

TEST(FlagParserTest, BoolValueVariants) {
  const char* argv[] = {"tool", "--a=true", "--b=0", "--c=yes", "--d=false"};
  FlagParser flags(5, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

// --- Dataset serialization -----------------------------------------------------

Dataset SmallDataset() {
  SyntheticWorld world{WorldConfig{}};
  DatasetGenerator gen(&world);
  PlatformConfig pc;
  pc.name = "SerTest";
  pc.platform = "Kwai";
  pc.clusters = {2, 3};
  pc.n_items = 25;
  pc.n_users = 20;
  pc.seed = 9;
  return gen.Generate(pc);
}

TEST(DatasetSerializationTest, RoundTripPreservesEverything) {
  const Dataset original = SmallDataset();
  BinaryWriter writer;
  WriteDataset(original, &writer);
  BinaryReader reader(writer.buffer());
  Dataset restored;
  ASSERT_TRUE(ReadDataset(&reader, &restored).ok());

  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.platform, original.platform);
  EXPECT_EQ(restored.text_vocab_size, original.text_vocab_size);
  EXPECT_EQ(restored.sequences, original.sequences);
  ASSERT_EQ(restored.items.size(), original.items.size());
  for (size_t i = 0; i < original.items.size(); ++i) {
    EXPECT_EQ(restored.items[i].tokens, original.items[i].tokens);
    EXPECT_EQ(restored.items[i].patches, original.items[i].patches);
    EXPECT_EQ(restored.items[i].true_cluster, original.items[i].true_cluster);
    EXPECT_EQ(restored.items[i].true_latent, original.items[i].true_latent);
  }
}

TEST(DatasetSerializationTest, FileRoundTrip) {
  const Dataset original = SmallDataset();
  const std::string path = ::testing::TempDir() + "/pmmrec_ds.pmds";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());
  Dataset restored;
  ASSERT_TRUE(LoadDatasetFromFile(path, &restored).ok());
  EXPECT_EQ(restored.sequences, original.sequences);
  EXPECT_FALSE(LoadDatasetFromFile(path + ".missing", &restored).ok());
}

TEST(DatasetSerializationTest, RejectsCorruptedData) {
  const Dataset original = SmallDataset();
  BinaryWriter writer;
  WriteDataset(original, &writer);
  // Truncated buffer.
  std::vector<uint8_t> truncated(writer.buffer().begin(),
                                 writer.buffer().begin() + 40);
  BinaryReader reader(std::move(truncated));
  Dataset restored;
  EXPECT_FALSE(ReadDataset(&reader, &restored).ok());
  // Wrong magic.
  BinaryWriter bad;
  bad.WriteU32(0xBADC0DE);
  BinaryReader bad_reader(bad.buffer());
  EXPECT_FALSE(ReadDataset(&bad_reader, &restored).ok());
}

// --- Rating prediction ------------------------------------------------------------

class RatingTest : public ::testing::Test {
 protected:
  RatingTest() : ds_(SmallRatingDataset()) {}

  static Dataset SmallRatingDataset() {
    SyntheticWorld world{WorldConfig{}};
    DatasetGenerator gen(&world);
    PlatformConfig pc;
    pc.name = "RatingTest";
    pc.platform = "HM";
    pc.clusters = {6, 7};
    pc.n_items = 40;
    pc.n_users = 60;
    pc.seed = 12;
    return gen.Generate(pc);
  }

  Dataset ds_;
};

TEST_F(RatingTest, GenerateRatingsIsValidAndSplit) {
  Rng rng(5);
  const RatingData data = GenerateRatings(ds_, 6, 0.3f, rng);
  EXPECT_FALSE(data.train.empty());
  EXPECT_FALSE(data.test.empty());
  const double total = static_cast<double>(data.train.size() +
                                           data.test.size());
  EXPECT_NEAR(data.train.size() / total, 0.8, 0.08);
  for (const auto& entry : data.train) {
    EXPECT_GE(entry.rating, 1.0f);
    EXPECT_LE(entry.rating, 5.0f);
    EXPECT_GE(entry.item, 0);
    EXPECT_LT(entry.item, ds_.num_items());
    EXPECT_GE(entry.user, 0);
    EXPECT_LT(entry.user, ds_.num_users());
  }
}

TEST_F(RatingTest, RatingsReflectContentAffinity) {
  // Higher-affinity (user taste, item) pairs must receive higher ratings
  // on average — the learnable signal of the task.
  Rng rng(6);
  const RatingData data = GenerateRatings(ds_, 10, 0.1f, rng);
  double lo_sum = 0, hi_sum = 0;
  int64_t lo_n = 0, hi_n = 0;
  for (const auto& e : data.train) {
    if (e.rating < 2.5f) {
      lo_sum += e.rating;
      ++lo_n;
    } else if (e.rating > 3.5f) {
      hi_sum += e.rating;
      ++hi_n;
    }
  }
  // Both tails must exist: ratings are not constant.
  EXPECT_GT(lo_n, 0);
  EXPECT_GT(hi_n, 0);
}

TEST_F(RatingTest, HeadLearnsToBeatMeanPredictor) {
  ScopedLogSilencer silence;
  PMMRecConfig config = PMMRecConfig::FromDataset(ds_);
  config.d_model = 16;
  PMMRecModel backbone(config, 3);
  // Brief backbone training so representations carry content signal.
  FitOptions opts;
  opts.max_epochs = 8;
  opts.eval_users = 30;
  FitModel(backbone, ds_, opts);

  Rng rng(7);
  const RatingData data = GenerateRatings(ds_, 12, 0.2f, rng);
  RatingHead head(&backbone, 11);
  head.Fit(data, /*epochs=*/40, /*lr=*/1e-2f);

  // Baseline: predict the global train mean.
  double mean = 0;
  for (const auto& e : data.train) mean += e.rating;
  mean /= static_cast<double>(data.train.size());
  double baseline_sq = 0;
  for (const auto& e : data.test) {
    baseline_sq += (e.rating - mean) * (e.rating - mean);
  }
  const double baseline_rmse =
      std::sqrt(baseline_sq / static_cast<double>(data.test.size()));

  const double head_rmse = head.Rmse(data.test);
  EXPECT_LT(head_rmse, baseline_rmse);

  // Predict() runs end-to-end.
  const float pred = head.Predict(ds_.TrainSeq(0), 3);
  EXPECT_TRUE(std::isfinite(pred));
}

}  // namespace
}  // namespace pmmrec
