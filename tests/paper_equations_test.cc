// Hand-verified numerical checks of the paper-equation implementations:
// loss values computed analytically for tiny, fully-known inputs.

#include <cmath>

#include <gtest/gtest.h>

#include "core/losses.h"

namespace pmmrec {
namespace {

// Two users, two items each: user 0 = {0, 1}, user 1 = {2, 3}. Anchors:
// (c=0, n=1) for user 0 and (c=2, n=3) for user 1.
SeqBatch FourItemBatch() {
  return MakeBatchFromSequences({{0, 1}, {2, 3}}, 2);
}

// Orthonormal ±e_i embeddings so every pairwise dot is exactly 0, 1 or -1.
Tensor UnitEmbeddings() {
  return Tensor::FromVector(Shape{4, 2}, {1, 0, 0, 1, -1, 0, 0, -1});
}

TEST(PaperEquationsTest, NiclValueMatchesHandComputation) {
  // With t == v and temperature 1:
  //   anchor 0 (c=0, n=1, negatives {2,3}):
  //     num = E_tv[0,0] + E_tv[0,1] + E_tt[0,1] = e + 1 + 1
  //     den = cross (e + 1 + e^-1 + 1) + intra (1 + e^-1 + 1)
  //   loss per anchor/direction = log(den) - log(num); all four
  //   anchor-direction combinations are identical by symmetry.
  const SeqBatch batch = FourItemBatch();
  const Tensor t = UnitEmbeddings();
  const Tensor v = t.Clone();
  const double e = std::exp(1.0);
  const double ei = std::exp(-1.0);
  const double num = e + 2.0;
  const double den = (e + 2.0 + ei) + (2.0 + ei);
  const double expected = std::log(den) - std::log(num);
  const float loss =
      CrossModalLoss(t, v, batch, NiclMode::kNicl, 1.0f).item();
  EXPECT_NEAR(loss, expected, 1e-5);
}

TEST(PaperEquationsTest, VclValueMatchesHandComputation) {
  // VCL (Eq. 6): num = E_tv[c,c] = e; den = e + negatives (e^-1 + 1).
  const SeqBatch batch = FourItemBatch();
  const Tensor t = UnitEmbeddings();
  const Tensor v = t.Clone();
  const double e = std::exp(1.0);
  const double ei = std::exp(-1.0);
  const double expected = std::log(e + ei + 1.0) - 1.0;  // log(den) - log(e)
  const float loss = CrossModalLoss(t, v, batch, NiclMode::kVcl, 1.0f).item();
  EXPECT_NEAR(loss, expected, 1e-5);
}

TEST(PaperEquationsTest, IclAddsIntraNegativesToDenominator) {
  // ICL (Eq. 7) = VCL + intra-modality negatives: den gains E_tt over the
  // same negative set, so the ICL loss is strictly larger here.
  const SeqBatch batch = FourItemBatch();
  const Tensor t = UnitEmbeddings();
  const Tensor v = t.Clone();
  const double e = std::exp(1.0);
  const double ei = std::exp(-1.0);
  const double expected = std::log(e + 2.0 * (ei + 1.0)) - 1.0;
  const float icl = CrossModalLoss(t, v, batch, NiclMode::kIcl, 1.0f).item();
  EXPECT_NEAR(icl, expected, 1e-5);
  const float vcl = CrossModalLoss(t, v, batch, NiclMode::kVcl, 1.0f).item();
  EXPECT_GT(icl, vcl);
}

TEST(PaperEquationsTest, DapEqualsCrossEntropyOverOtherUsersItems) {
  // Single valid prediction position per user; with orthogonal item reps
  // and hidden = 2 * rep(next), the DAP loss is the mean of two softmax
  // cross-entropies whose logits we can enumerate.
  const SeqBatch batch = FourItemBatch();
  const Tensor reps = UnitEmbeddings();
  Tensor hidden = Tensor::Zeros(Shape{2, 2, 2});
  // User 0, position 0 predicts item 1 (unique idx 1): rep = (0, 1).
  hidden.data()[0 * 4 + 0 * 2 + 0] = 0.0f;
  hidden.data()[0 * 4 + 0 * 2 + 1] = 2.0f;
  // User 1, position 0 predicts item 3 (unique idx 3): rep = (0, -1).
  hidden.data()[1 * 4 + 0 * 2 + 0] = 0.0f;
  hidden.data()[1 * 4 + 0 * 2 + 1] = -2.0f;

  // Logits for user 0 anchor: dot(h, rep_j) = [0, 2, 0, -2], with own
  // items {0, 1} masked except the target 1 -> candidates {1, 2, 3} with
  // logits {2, 0, -2}.
  const double z0 = std::exp(2.0) + std::exp(0.0) + std::exp(-2.0);
  const double loss0 = std::log(z0) - 2.0;
  // User 1 anchor: logits over {3, 0, 1} = {2, 0, -2}: same value.
  const double expected = loss0;
  const float dap = DapLoss(hidden, reps, batch).item();
  EXPECT_NEAR(dap, expected, 1e-5);
}

TEST(PaperEquationsTest, RclMatchesSymmetricInfoNce) {
  // Two users with hand-set pooled representations. Sequences of length 1
  // pool to the single hidden state.
  const SeqBatch batch = MakeBatchFromSequences({{0}, {1}}, 1);
  Tensor hidden = Tensor::FromVector(Shape{2, 1, 2}, {1, 0, 0, 1});
  Tensor corrupted = Tensor::FromVector(Shape{2, 1, 2}, {1, 0, 0, 1});
  // Similarities (temperature 1): S = I (unit vectors), so each row's CE =
  // log(e^1 + e^0) - 1.
  const double expected = std::log(std::exp(1.0) + 1.0) - 1.0;
  const float rcl = RclLoss(hidden, corrupted, batch, 1.0f).item();
  EXPECT_NEAR(rcl, expected, 1e-5);
}

TEST(PaperEquationsTest, NidCorruptionRatesApproximateConfig) {
  // Over many rows, the fraction of shuffled positions should be near
  // max(2, 0.15 * len) / len and replacements near 5% of the remainder.
  Rng rng(99);
  std::vector<std::vector<int32_t>> seqs;
  for (int i = 0; i < 200; ++i) {
    std::vector<int32_t> s;
    for (int32_t j = 0; j < 10; ++j) s.push_back((i * 10 + j) % 64);
    seqs.push_back(s);
  }
  const SeqBatch batch = MakeBatchFromSequences(seqs, 10);
  const CorruptedBatch corrupted = CorruptSequences(batch, 0.15f, 0.05f, rng);
  int64_t shuffled = 0, replaced = 0, total = 0;
  for (int32_t label : corrupted.labels) {
    if (label == kNidIgnore) continue;
    ++total;
    if (label == kNidShuffled) ++shuffled;
    if (label == kNidReplaced) ++replaced;
  }
  // 10 positions -> max(2, round(1.5)) = 2 shuffled per row = 20%.
  EXPECT_NEAR(static_cast<double>(shuffled) / total, 0.20, 0.02);
  EXPECT_NEAR(static_cast<double>(replaced) / total, 0.05 * 0.8, 0.025);
}

}  // namespace
}  // namespace pmmrec
