// Parameterized property sweeps: invariants that must hold across whole
// configuration ranges, not just single settings.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/generator.h"
#include "nn/transformer.h"
#include "utils/logging.h"

namespace pmmrec {
namespace {

// ---------------------------------------------------------------------------
// Transformer configuration sweep: causality and gradient flow must hold
// for every (d_model, n_heads, n_blocks) combination.
// ---------------------------------------------------------------------------

using TransformerParams = std::tuple<int64_t, int64_t, int64_t>;

class TransformerSweepTest
    : public ::testing::TestWithParam<TransformerParams> {};

TEST_P(TransformerSweepTest, CausalMaskBlocksFutureInformation) {
  const auto [d, heads, blocks] = GetParam();
  Rng rng(7);
  TransformerEncoder enc(blocks, d, heads, 2 * d, 0.0f, &rng);
  enc.SetTraining(false);
  const int64_t len = 6;
  Tensor x = Tensor::Randn(Shape{2, len, d}, rng);
  Tensor mask = MultiHeadSelfAttention::CausalMask(len);
  Tensor y1 = enc.Forward(x, mask);
  Tensor x2 = x.Clone();
  for (int64_t j = 0; j < d; ++j) {
    x2.data()[(len - 1) * d + j] += 7.0f;  // Perturb last position, row 0.
  }
  Tensor y2 = enc.Forward(x2, mask);
  for (int64_t l = 0; l + 1 < len; ++l) {
    for (int64_t j = 0; j < d; ++j) {
      ASSERT_NEAR(y1.at({0, l, j}), y2.at({0, l, j}), 1e-4f)
          << "future leak at d=" << d << " heads=" << heads
          << " blocks=" << blocks << " pos=" << l;
    }
  }
}

TEST_P(TransformerSweepTest, GradientsReachEveryParameter) {
  const auto [d, heads, blocks] = GetParam();
  Rng rng(8);
  TransformerEncoder enc(blocks, d, heads, 2 * d, 0.0f, &rng);
  Tensor x = Tensor::Randn(Shape{2, 4, d}, rng);
  Tensor loss = SumAll(Square(enc.Forward(x, Tensor())));
  loss.Backward();
  for (const auto& [name, param] : enc.NamedParameters()) {
    ASSERT_TRUE(param->has_grad()) << name;
    double norm = 0.0;
    for (int64_t i = 0; i < param->numel(); ++i) {
      norm += std::fabs(param->grad_data()[i]);
    }
    EXPECT_GT(norm, 0.0) << "zero gradient at " << name << " (d=" << d
                         << ", heads=" << heads << ", blocks=" << blocks
                         << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TransformerSweepTest,
    ::testing::Values(TransformerParams{8, 1, 1}, TransformerParams{8, 2, 2},
                      TransformerParams{16, 4, 1},
                      TransformerParams{16, 2, 3},
                      TransformerParams{32, 2, 2}));

// ---------------------------------------------------------------------------
// Generator sweep: for every behaviour configuration, sequences must be
// valid and the empirical cluster-transition matrix must follow the world
// kernel.
// ---------------------------------------------------------------------------

using GeneratorParams = std::tuple<float /*zipf*/, float /*affinity*/,
                                   float /*noise*/>;

class GeneratorSweepTest : public ::testing::TestWithParam<GeneratorParams> {
};

TEST_P(GeneratorSweepTest, SequencesValidAndKernelRespected) {
  const auto [zipf, affinity, noise] = GetParam();
  SyntheticWorld world{WorldConfig{}};
  DatasetGenerator gen(&world);
  PlatformConfig config;
  config.name = "Sweep";
  config.platform = "Bili";
  config.clusters = {0, 1};
  config.n_items = 60;
  config.n_users = 400;
  config.min_seq_len = 4;
  config.max_seq_len = 10;
  config.item_pop_zipf = zipf;
  config.content_affinity = affinity;
  config.image_noise = noise;
  config.seed = 3;
  const Dataset ds = gen.Generate(config);

  double counts[2][2] = {{0, 0}, {0, 0}};
  for (const auto& seq : ds.sequences) {
    ASSERT_GE(seq.size(), 4u);
    ASSERT_LE(seq.size(), 10u);
    for (size_t i = 0; i < seq.size(); ++i) {
      ASSERT_GE(seq[i], 0);
      ASSERT_LT(seq[i], ds.num_items());
      if (i > 0) {
        counts[ds.items[static_cast<size_t>(seq[i - 1])].true_cluster]
              [ds.items[static_cast<size_t>(seq[i])].true_cluster] += 1.0;
      }
    }
  }
  // Cluster-level transitions follow the (restricted, renormalized) world
  // kernel regardless of item-level popularity/affinity settings.
  for (int c = 0; c < 2; ++c) {
    const double total = counts[c][0] + counts[c][1];
    ASSERT_GT(total, 50.0);
    const double expected =
        world.TransitionProb(c, 0) /
        (world.TransitionProb(c, 0) + world.TransitionProb(c, 1));
    EXPECT_NEAR(counts[c][0] / total, expected, 0.06)
        << "zipf=" << zipf << " affinity=" << affinity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Behaviours, GeneratorSweepTest,
    ::testing::Values(GeneratorParams{0.0f, 0.0f, 0.2f},
                      GeneratorParams{0.7f, 0.0f, 0.5f},
                      GeneratorParams{0.7f, 3.0f, 0.5f},
                      GeneratorParams{1.2f, 5.0f, 0.9f}));

// ---------------------------------------------------------------------------
// Model determinism sweep: identical seeds must give bit-identical
// training outcomes for every modality mode.
// ---------------------------------------------------------------------------

class DeterminismSweepTest : public ::testing::TestWithParam<ModalityMode> {};

TEST_P(DeterminismSweepTest, SameSeedSameResult) {
  ScopedLogSilencer silence;
  SyntheticWorld world{WorldConfig{}};
  DatasetGenerator gen(&world);
  PlatformConfig pc;
  pc.name = "Det";
  pc.platform = "HM";
  pc.clusters = {6, 7};
  pc.n_items = 30;
  pc.n_users = 30;
  pc.seed = 5;
  const Dataset ds = gen.Generate(pc);

  auto run = [&] {
    PMMRecConfig config = PMMRecConfig::FromDataset(ds);
    config.d_model = 16;
    config.modality = GetParam();
    PMMRecModel model(config, 42);
    model.SetPretrainingObjectives(true);
    FitOptions opts;
    opts.max_epochs = 2;
    opts.eval_users = -1;
    FitModel(model, ds, opts);
    return model.ScoreItems(ds.TestPrefix(0));
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Modalities, DeterminismSweepTest,
                         ::testing::Values(ModalityMode::kBoth,
                                           ModalityMode::kTextOnly,
                                           ModalityMode::kVisionOnly));

// ---------------------------------------------------------------------------
// Sequence-length sweep: the user encoder and scoring path must accept any
// history length from 1 to beyond max_seq_len (truncation).
// ---------------------------------------------------------------------------

class HistoryLengthSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HistoryLengthSweepTest, ScoreItemsHandlesAnyPrefixLength) {
  SyntheticWorld world{WorldConfig{}};
  DatasetGenerator gen(&world);
  PlatformConfig pc;
  pc.name = "Len";
  pc.platform = "HM";
  pc.clusters = {6, 7};
  pc.n_items = 25;
  pc.n_users = 20;
  pc.seed = 6;
  const Dataset ds = gen.Generate(pc);
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  config.d_model = 16;
  PMMRecModel model(config, 1);
  model.AttachDataset(&ds);
  model.PrepareForEval();

  std::vector<int32_t> prefix;
  for (int i = 0; i < GetParam(); ++i) {
    prefix.push_back(static_cast<int32_t>(i % ds.num_items()));
  }
  const auto scores = model.ScoreItems(prefix);
  EXPECT_EQ(static_cast<int64_t>(scores.size()), ds.num_items());
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(Lengths, HistoryLengthSweepTest,
                         ::testing::Values(1, 2, 5, 10, 17, 40));

}  // namespace
}  // namespace pmmrec
