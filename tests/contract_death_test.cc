// Contract tests: invalid API usage must abort with a PMM_CHECK message
// (the library's no-exceptions error model for programming errors).

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace pmmrec {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, MatMulShapeMismatchAborts) {
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape{2, 3}, rng);
  Tensor b = Tensor::Randn(Shape{4, 5}, rng);
  EXPECT_DEATH(MatMul(a, b), "PMM_CHECK");
}

TEST(ContractDeathTest, MatMulBatchMismatchAborts) {
  Rng rng(2);
  Tensor a = Tensor::Randn(Shape{2, 3, 4}, rng);
  Tensor b = Tensor::Randn(Shape{3, 4, 5}, rng);
  EXPECT_DEATH(MatMul(a, b), "batch mismatch");
}

TEST(ContractDeathTest, BroadcastIncompatibleAborts) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  Tensor b = Tensor::Zeros(Shape{4});
  EXPECT_DEATH(Add(a, b), "incompatible broadcast");
}

TEST(ContractDeathTest, EmbeddingIndexOutOfRangeAborts) {
  Rng rng(3);
  Tensor weight = Tensor::Randn(Shape{4, 2}, rng);
  EXPECT_DEATH(EmbeddingLookup(weight, {5}), "PMM_CHECK");
  EXPECT_DEATH(EmbeddingLookup(weight, {-1}), "PMM_CHECK");
}

TEST(ContractDeathTest, SliceOutOfBoundsAborts) {
  Tensor a = Tensor::Zeros(Shape{3, 4});
  EXPECT_DEATH(Slice(a, 1, 2, 5), "PMM_CHECK");
}

TEST(ContractDeathTest, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Zeros(Shape{3}, /*requires_grad=*/true);
  Tensor y = MulScalar(a, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(ContractDeathTest, BackwardUnderInferenceModeAborts) {
  Tensor a = Tensor::Zeros(Shape{1}, /*requires_grad=*/true);
  Tensor y = MulScalar(a, 2.0f);
  InferenceMode inference;
  EXPECT_DEATH(y.Backward(), "InferenceMode");
}

TEST(ContractDeathTest, TrainingModeDropoutUnderInferenceModeAborts) {
  Rng rng(4);
  Tensor a = Tensor::Randn(Shape{4, 4}, rng);
  InferenceMode inference;
  // Eval-mode dropout is the identity and stays legal under the guard;
  // training-mode dropout would sample, which inference must never do.
  (void)Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_DEATH(Dropout(a, 0.5f, rng, /*training=*/true), "InferenceMode");
}

TEST(ContractDeathTest, ItemAccessOutOfRangeAborts) {
  Tensor a = Tensor::Zeros(Shape{2, 2});
  EXPECT_DEATH(a.item(), "PMM_CHECK");
  EXPECT_DEATH(a.at({2, 0}), "PMM_CHECK");
}

TEST(ContractDeathTest, UndefinedTensorAccessAborts) {
  Tensor undefined;
  EXPECT_DEATH(undefined.shape(), "PMM_CHECK");
}

TEST(ContractDeathTest, CrossEntropyAllIgnoredAborts) {
  Tensor logits = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(CrossEntropy(logits, {-1, -1}, -1), "all targets ignored");
}

TEST(ContractDeathTest, LinearWrongInputWidthAborts) {
  Rng rng(4);
  Linear lin(4, 2, rng);
  Tensor x = Tensor::Zeros(Shape{3, 5});
  EXPECT_DEATH(lin.Forward(x), "PMM_CHECK");
}

TEST(ContractDeathTest, BatcherRejectsEmptyInput) {
  EXPECT_DEATH(MakeBatchFromSequences({}, 4), "PMM_CHECK");
}

TEST(ContractDeathTest, ReshapeNumelMismatchAborts) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(Reshape(a, Shape{7}), "PMM_CHECK");
}

}  // namespace
}  // namespace pmmrec
