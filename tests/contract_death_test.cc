// Contract tests: invalid API usage must abort with a PMM_CHECK message
// (the library's no-exceptions error model for programming errors).

#include <vector>

#include <gtest/gtest.h>

#include "core/serving.h"
#include "data/batcher.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "utils/rng.h"

namespace pmmrec {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, MatMulShapeMismatchAborts) {
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape{2, 3}, rng);
  Tensor b = Tensor::Randn(Shape{4, 5}, rng);
  EXPECT_DEATH(MatMul(a, b), "PMM_CHECK");
}

TEST(ContractDeathTest, MatMulBatchMismatchAborts) {
  Rng rng(2);
  Tensor a = Tensor::Randn(Shape{2, 3, 4}, rng);
  Tensor b = Tensor::Randn(Shape{3, 4, 5}, rng);
  EXPECT_DEATH(MatMul(a, b), "batch mismatch");
}

TEST(ContractDeathTest, BroadcastIncompatibleAborts) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  Tensor b = Tensor::Zeros(Shape{4});
  EXPECT_DEATH(Add(a, b), "incompatible broadcast");
}

TEST(ContractDeathTest, EmbeddingIndexOutOfRangeAborts) {
  Rng rng(3);
  Tensor weight = Tensor::Randn(Shape{4, 2}, rng);
  EXPECT_DEATH(EmbeddingLookup(weight, {5}), "PMM_CHECK");
  EXPECT_DEATH(EmbeddingLookup(weight, {-1}), "PMM_CHECK");
}

TEST(ContractDeathTest, SliceOutOfBoundsAborts) {
  Tensor a = Tensor::Zeros(Shape{3, 4});
  EXPECT_DEATH(Slice(a, 1, 2, 5), "PMM_CHECK");
}

TEST(ContractDeathTest, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Zeros(Shape{3}, /*requires_grad=*/true);
  Tensor y = MulScalar(a, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(ContractDeathTest, BackwardUnderInferenceModeAborts) {
  Tensor a = Tensor::Zeros(Shape{1}, /*requires_grad=*/true);
  Tensor y = MulScalar(a, 2.0f);
  InferenceMode inference;
  EXPECT_DEATH(y.Backward(), "InferenceMode");
}

TEST(ContractDeathTest, TrainingModeDropoutUnderInferenceModeAborts) {
  Rng rng(4);
  Tensor a = Tensor::Randn(Shape{4, 4}, rng);
  InferenceMode inference;
  // Eval-mode dropout is the identity and stays legal under the guard;
  // training-mode dropout would sample, which inference must never do.
  (void)Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_DEATH(Dropout(a, 0.5f, rng, /*training=*/true), "InferenceMode");
}

TEST(ContractDeathTest, ItemAccessOutOfRangeAborts) {
  Tensor a = Tensor::Zeros(Shape{2, 2});
  EXPECT_DEATH(a.item(), "PMM_CHECK");
  EXPECT_DEATH(a.at({2, 0}), "PMM_CHECK");
}

TEST(ContractDeathTest, UndefinedTensorAccessAborts) {
  Tensor undefined;
  EXPECT_DEATH(undefined.shape(), "PMM_CHECK");
}

TEST(ContractDeathTest, CrossEntropyAllIgnoredAborts) {
  Tensor logits = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(CrossEntropy(logits, {-1, -1}, -1), "all targets ignored");
}

TEST(ContractDeathTest, LinearWrongInputWidthAborts) {
  Rng rng(4);
  Linear lin(4, 2, rng);
  Tensor x = Tensor::Zeros(Shape{3, 5});
  EXPECT_DEATH(lin.Forward(x), "PMM_CHECK");
}

TEST(ContractDeathTest, BatcherRejectsEmptyInput) {
  EXPECT_DEATH(MakeBatchFromSequences({}, 4), "PMM_CHECK");
}

TEST(ContractDeathTest, ReshapeNumelMismatchAborts) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(Reshape(a, Shape{7}), "PMM_CHECK");
}

// Quantized-table rows and queries that could come from the same fp32
// table; shared by the quantized-serving contract tests below.
std::vector<float> QuantFixtureRows(int64_t n, int64_t d) {
  Rng rng(9);
  std::vector<float> rows(static_cast<size_t>(n * d));
  for (float& v : rows) v = rng.NormalFloat();
  return rows;
}

TEST(ContractDeathTest, StaleQuantizedTableScoringAborts) {
  constexpr int64_t kItems = 8, kWidth = 4;
  const std::vector<float> rows = QuantFixtureRows(kItems, kWidth);
  QuantizedTable qt;
  QuantizeTableRows(rows.data(), kItems, kWidth, &qt);
  const std::vector<float> query(kWidth, 0.5f);
  // Fresh table scores fine.
  (void)QuantCandidateTopK(qt, rows.data(), query.data(), 1, kItems);
  // Any parameter update anywhere makes the snapshot stale; scoring it
  // must abort rather than silently rank against old codes.
  BumpParamUpdateVersion();
  EXPECT_DEATH(QuantCandidateTopK(qt, rows.data(), query.data(), 1, kItems),
               "stale quantized table");
}

TEST(ContractDeathTest, RerankWindowOutsideCatalogueAborts) {
  constexpr int64_t kItems = 8, kWidth = 4;
  const std::vector<float> rows = QuantFixtureRows(kItems, kWidth);
  QuantizedTable qt;
  QuantizeTableRows(rows.data(), kItems, kWidth, &qt);
  const std::vector<float> query(kWidth, 0.5f);
  EXPECT_DEATH(
      QuantCandidateTopK(qt, rows.data(), query.data(), 1, kItems + 1),
      "re-rank window");
  EXPECT_DEATH(QuantCandidateTopK(qt, rows.data(), query.data(), 1, 0),
               "re-rank window");
  EXPECT_DEATH(EffectiveRerankWindow(kItems + 1, kItems), "re-rank window");
}

TEST(ContractDeathTest, QuantizedAccessWithoutEnablingAborts) {
  ItemTableCache cache;
  EXPECT_DEATH(cache.quantized(0), "quantization not enabled");
}

TEST(ContractDeathTest, QGemmReductionBeyondOverflowBoundAborts) {
  const int64_t k = gemm::kQMaxK + 1;
  std::vector<int8_t> a(static_cast<size_t>(k), int8_t{1});
  std::vector<int8_t> b(static_cast<size_t>(k), int8_t{1});
  int32_t c = 0;
  EXPECT_DEATH(gemm::QGemmNT(a.data(), b.data(), &c, 1, k, 1, k, k, 1),
               "PMM_CHECK");
}

}  // namespace
}  // namespace pmmrec
