// Tests for ranking metrics and the leave-one-out evaluator.

#include <cmath>

#include <gtest/gtest.h>

#include "eval/evaluator.h"

namespace pmmrec {
namespace {

TEST(MetricsTest, RankOfTargetBasics) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  EXPECT_EQ(RankOfTarget(scores, 1, {}), 0);
  EXPECT_EQ(RankOfTarget(scores, 0, {}), 3);
  EXPECT_EQ(RankOfTarget(scores, 2, {}), 2);
}

TEST(MetricsTest, RankOfTargetExcludesHistory) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  // Excluding the two better-scored items moves the target to rank 0.
  EXPECT_EQ(RankOfTarget(scores, 2, {1, 3}), 0);
  // Excluding the target itself must not remove it from the ranking.
  EXPECT_EQ(RankOfTarget(scores, 2, {2}), 2);
}

TEST(MetricsTest, TiesRankAheadOfTarget) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(RankOfTarget(scores, 1, {}), 2);  // Pessimistic.
}

TEST(MetricsTest, HrAndNdcgAccumulation) {
  RankingMetrics m;
  m.AddRank(0);    // Hit everywhere, NDCG@k gain = 1.
  m.AddRank(15);   // Hit @20/@50 only.
  m.AddRank(100);  // Miss everywhere.
  m.Finalize();
  EXPECT_EQ(m.count, 3);
  EXPECT_NEAR(m.Hr(10), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.Hr(20), 200.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.Hr(50), 200.0 / 3.0, 1e-9);
  const double gain15 = 1.0 / std::log2(17.0);
  EXPECT_NEAR(m.Ndcg(10), 100.0 / 3.0, 1e-6);
  EXPECT_NEAR(m.Ndcg(20), 100.0 * (1.0 + gain15) / 3.0, 1e-6);
}

TEST(MetricsTest, MeanRankAccumulates) {
  RankingMetrics m;
  m.AddRank(0);
  m.AddRank(10);
  m.AddRank(200);
  m.Finalize();
  EXPECT_DOUBLE_EQ(m.mean_rank, 70.0);
}

TEST(MetricsTest, NdcgDiscountsLowerRanks) {
  RankingMetrics top;
  top.AddRank(0);
  top.Finalize();
  RankingMetrics low;
  low.AddRank(9);
  low.Finalize();
  EXPECT_GT(top.Ndcg(10), low.Ndcg(10));
  EXPECT_DOUBLE_EQ(top.Hr(10), low.Hr(10));
}

// A scorer that always ranks item (last prefix item + 1) first — matching
// the ground truth of the ConsecutiveDataset below.
class OracleScorer : public Scorer {
 public:
  explicit OracleScorer(int64_t n_items) : n_items_(n_items) {}
  std::vector<float> ScoreItems(const std::vector<int32_t>& prefix) override {
    std::vector<float> scores(static_cast<size_t>(n_items_), 0.0f);
    const int32_t next = (prefix.back() + 1) % static_cast<int32_t>(n_items_);
    scores[static_cast<size_t>(next)] = 1.0f;
    ++calls_;
    return scores;
  }
  int64_t calls() const { return calls_; }

 private:
  int64_t n_items_;
  int64_t calls_ = 0;
};

Dataset ConsecutiveDataset(int64_t n_users, int64_t n_items) {
  Dataset ds;
  ds.items.resize(static_cast<size_t>(n_items));
  for (int64_t u = 0; u < n_users; ++u) {
    std::vector<int32_t> seq;
    const int32_t start = static_cast<int32_t>(u % n_items);
    for (int32_t i = 0; i < 5; ++i) {
      seq.push_back((start + i) % static_cast<int32_t>(n_items));
    }
    ds.sequences.push_back(seq);
  }
  return ds;
}

TEST(EvaluatorTest, OracleGetsPerfectMetrics) {
  Dataset ds = ConsecutiveDataset(20, 50);
  OracleScorer oracle(50);
  const RankingMetrics test = EvaluateRanking(oracle, ds, EvalSplit::kTest);
  EXPECT_DOUBLE_EQ(test.Hr(10), 100.0);
  EXPECT_DOUBLE_EQ(test.Ndcg(10), 100.0);
  const RankingMetrics val =
      EvaluateRanking(oracle, ds, EvalSplit::kValidation);
  EXPECT_DOUBLE_EQ(val.Hr(10), 100.0);
}

TEST(EvaluatorTest, MaxUsersSubsamples) {
  Dataset ds = ConsecutiveDataset(100, 50);
  OracleScorer oracle(50);
  const RankingMetrics m =
      EvaluateRanking(oracle, ds, EvalSplit::kTest, /*max_users=*/10);
  EXPECT_EQ(m.count, 10);
  EXPECT_EQ(oracle.calls(), 10);
}

// Asking for more users than exist must evaluate every user exactly once
// (no striding past the end) and match the evaluate-everything result.
TEST(EvaluatorTest, MaxUsersBeyondUserCountEvaluatesAll) {
  Dataset ds = ConsecutiveDataset(20, 50);
  OracleScorer oracle(50);
  const RankingMetrics capped =
      EvaluateRanking(oracle, ds, EvalSplit::kTest, /*max_users=*/100);
  EXPECT_EQ(capped.count, 20);
  EXPECT_EQ(oracle.calls(), 20);
  const RankingMetrics all =
      EvaluateRanking(oracle, ds, EvalSplit::kTest, /*max_users=*/-1);
  EXPECT_EQ(all.count, capped.count);
  EXPECT_DOUBLE_EQ(all.Hr(10), capped.Hr(10));
  EXPECT_DOUBLE_EQ(all.Ndcg(10), capped.Ndcg(10));
  EXPECT_DOUBLE_EQ(all.mean_rank, capped.mean_rank);
}

TEST(EvaluatorTest, ColdStartEvaluation) {
  Dataset ds = ConsecutiveDataset(10, 50);
  OracleScorer oracle(50);
  std::vector<ColdStartCase> cases;
  cases.push_back({{3}, 4});
  cases.push_back({{7, 8}, 9});
  const RankingMetrics m = EvaluateColdStart(oracle, cases);
  EXPECT_EQ(m.count, 2);
  EXPECT_DOUBLE_EQ(m.Hr(10), 100.0);
}

// A scorer that ranks the target second-best to exercise NDCG < 100.
class SecondBestScorer : public Scorer {
 public:
  explicit SecondBestScorer(int64_t n_items) : n_items_(n_items) {}
  std::vector<float> ScoreItems(const std::vector<int32_t>& prefix) override {
    std::vector<float> scores(static_cast<size_t>(n_items_), 0.0f);
    const int32_t next = (prefix.back() + 1) % static_cast<int32_t>(n_items_);
    scores[static_cast<size_t>(next)] = 0.9f;
    scores[static_cast<size_t>((next + 5) % n_items_)] = 1.0f;
    return scores;
  }

 private:
  int64_t n_items_;
};

TEST(EvaluatorTest, NonPerfectScorerGetsDiscountedNdcg) {
  Dataset ds = ConsecutiveDataset(10, 50);
  SecondBestScorer scorer(50);
  const RankingMetrics m = EvaluateRanking(scorer, ds, EvalSplit::kTest);
  EXPECT_DOUBLE_EQ(m.Hr(10), 100.0);
  EXPECT_NEAR(m.Ndcg(10), 100.0 / std::log2(3.0), 1e-6);
}

}  // namespace
}  // namespace pmmrec
