// Grad-free inference path: InferenceMode semantics, the frozen-model
// item-table cache, and the batched scoring/evaluation pipeline.
//
// The load-bearing claims pinned down here:
//  1. A forward pass under InferenceMode is bitwise identical to the same
//     forward with autograd recording on — the guard changes bookkeeping,
//     never numerics.
//  2. A full ScoreUsersBatched sweep creates zero autograd nodes and
//     allocates zero gradient buffers.
//  3. The batched evaluator produces bitwise-identical metrics to the
//     legacy per-user serial evaluator, at 1 and 4 threads, for PMMRec,
//     for a baseline, and for cold-start evaluation.
//  4. The item-table cache rebuilds exactly when it must: never on repeat
//     scoring, always after an optimizer step / checkpoint load / return
//     to training mode.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/id_models.h"
#include "core/pmmrec.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tests/test_util.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

class InferenceTest : public test::SmallModelTest {
 protected:
  // Sequence tensor for a prefix built from the cached item table, the
  // same way every scoring path builds it.
  Tensor SeqFromTable(const std::vector<int32_t>& prefix) {
    const std::vector<float>& table = model_.ItemRepresentationTable();
    const int64_t d = config_.d_model;
    const int64_t start = std::max<int64_t>(
        0, static_cast<int64_t>(prefix.size()) - config_.max_seq_len);
    const int64_t len = static_cast<int64_t>(prefix.size()) - start;
    Tensor seq = Tensor::Zeros(Shape{1, len, d});
    for (int64_t l = 0; l < len; ++l) {
      const int32_t item = prefix[static_cast<size_t>(start + l)];
      std::memcpy(seq.data() + l * d,
                  table.data() + static_cast<int64_t>(item) * d,
                  static_cast<size_t>(d) * sizeof(float));
    }
    return seq;
  }
};

TEST_F(InferenceTest, InferenceForwardBitwiseEqualsGradRecordingForward) {
  model_.PrepareForEval();
  const std::vector<int32_t> prefix = ds_.TestPrefix(0);

  const uint64_t nodes_before = internal::AutogradNodesCreated();
  Tensor grad_out = model_.user_encoder().Forward(SeqFromTable(prefix));
  EXPECT_GT(internal::AutogradNodesCreated(), nodes_before)
      << "grad-recording forward built no graph; the A side of the A/B is "
         "not actually the legacy path";

  Tensor inf_out;
  {
    InferenceMode inference;
    const uint64_t nodes_inf = internal::AutogradNodesCreated();
    inf_out = model_.user_encoder().Forward(SeqFromTable(prefix));
    EXPECT_EQ(internal::AutogradNodesCreated(), nodes_inf);
  }

  ASSERT_EQ(inf_out.numel(), grad_out.numel());
  EXPECT_EQ(std::memcmp(inf_out.data(), grad_out.data(),
                        static_cast<size_t>(inf_out.numel()) * sizeof(float)),
            0)
      << "InferenceMode changed forward numerics";
}

TEST_F(InferenceTest, ScoreUsersBatchedBuildsNoGraphAndAllocatesNoGrads) {
  model_.PrepareForEval();  // cache build outside the measured window
  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(48);
  std::vector<float> scores(prefixes.size() *
                            static_cast<size_t>(ds_.num_items()));

  const uint64_t nodes_before = internal::AutogradNodesCreated();
  const uint64_t grads_before = internal::GradBuffersAllocated();
  model_.ScoreUsersBatched(prefixes, scores.data());
  EXPECT_EQ(internal::AutogradNodesCreated(), nodes_before)
      << "batched scoring recorded autograd nodes";
  EXPECT_EQ(internal::GradBuffersAllocated(), grads_before)
      << "batched scoring allocated gradient storage";
}

TEST_F(InferenceTest, BatchedScoresBitwiseEqualSerialScoreItems) {
  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(40);
  const int64_t n_items = ds_.num_items();
  std::vector<float> batched(prefixes.size() * static_cast<size_t>(n_items));
  model_.ScoreUsersBatched(prefixes, batched.data());
  for (size_t u = 0; u < prefixes.size(); ++u) {
    const std::vector<float> serial = model_.ScoreItems(prefixes[u]);
    ASSERT_EQ(serial.size(), static_cast<size_t>(n_items));
    ASSERT_EQ(std::memcmp(serial.data(),
                          batched.data() + u * static_cast<size_t>(n_items),
                          serial.size() * sizeof(float)),
              0)
        << "user " << u << " (len " << prefixes[u].size() << ")";
  }
}

// Forces the legacy per-case evaluator path (ScoreWidth stays -1) over a
// wrapped model. `parallel` additionally opts into the fan-out branch.
class LegacyPathScorer : public Scorer {
 public:
  LegacyPathScorer(Scorer* inner, bool parallel)
      : inner_(inner), parallel_(parallel) {}
  void PrepareForEval() override { inner_->PrepareForEval(); }
  std::vector<float> ScoreItems(const std::vector<int32_t>& prefix) override {
    return inner_->ScoreItems(prefix);
  }
  bool SupportsParallelEval() const override { return parallel_; }

 private:
  Scorer* inner_;
  bool parallel_;
};

// Known width but no batched override: exercises the default
// ScoreItemsBatch fallback, fanned out across the pool.
class DefaultBatchScorer : public Scorer {
 public:
  explicit DefaultBatchScorer(Scorer* inner, int64_t width)
      : inner_(inner), width_(width) {}
  void PrepareForEval() override { inner_->PrepareForEval(); }
  std::vector<float> ScoreItems(const std::vector<int32_t>& prefix) override {
    return inner_->ScoreItems(prefix);
  }
  int64_t ScoreWidth() const override { return width_; }
  bool SupportsParallelEval() const override { return true; }

 private:
  Scorer* inner_;
  int64_t width_;
};

void ExpectMetricsBitwiseEqual(const RankingMetrics& a,
                               const RankingMetrics& b, const char* what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.hr10, b.hr10) << what;
  EXPECT_EQ(a.hr20, b.hr20) << what;
  EXPECT_EQ(a.hr50, b.hr50) << what;
  EXPECT_EQ(a.ndcg10, b.ndcg10) << what;
  EXPECT_EQ(a.ndcg20, b.ndcg20) << what;
  EXPECT_EQ(a.ndcg50, b.ndcg50) << what;
  EXPECT_EQ(a.mean_rank, b.mean_rank) << what;
}

TEST_F(InferenceTest, EvaluatorMetricsBitwiseIdenticalAcrossPathsAndThreads) {
  constexpr int64_t kMaxUsers = 60;
  // Reference: legacy serial path, single thread.
  RankingMetrics reference;
  {
    NumThreadsGuard guard(1);
    LegacyPathScorer legacy(&model_, /*parallel=*/false);
    reference = EvaluateRanking(legacy, ds_, EvalSplit::kTest, kMaxUsers);
  }
  ASSERT_GT(reference.count, 0);

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    const std::string tag = "threads=" + std::to_string(threads);

    RankingMetrics batched =
        EvaluateRanking(model_, ds_, EvalSplit::kTest, kMaxUsers);
    ExpectMetricsBitwiseEqual(reference, batched, ("batched " + tag).c_str());

    LegacyPathScorer parallel_legacy(&model_, /*parallel=*/true);
    RankingMetrics fanned =
        EvaluateRanking(parallel_legacy, ds_, EvalSplit::kTest, kMaxUsers);
    ExpectMetricsBitwiseEqual(reference, fanned,
                              ("legacy-parallel " + tag).c_str());

    DefaultBatchScorer default_batch(&model_, ds_.num_items());
    RankingMetrics fallback =
        EvaluateRanking(default_batch, ds_, EvalSplit::kTest, kMaxUsers);
    ExpectMetricsBitwiseEqual(reference, fallback,
                              ("default-batch " + tag).c_str());
  }
}

TEST_F(InferenceTest, ColdStartMetricsBitwiseIdenticalAcrossPathsAndThreads) {
  const std::vector<ColdStartCase> cases = BuildColdStartCases(ds_, 2);
  ASSERT_FALSE(cases.empty());
  constexpr int64_t kMaxCases = 40;

  RankingMetrics reference;
  {
    NumThreadsGuard guard(1);
    LegacyPathScorer legacy(&model_, /*parallel=*/false);
    reference = EvaluateColdStart(legacy, cases, kMaxCases);
  }
  ASSERT_GT(reference.count, 0);

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    const std::string tag = "threads=" + std::to_string(threads);
    RankingMetrics batched = EvaluateColdStart(model_, cases, kMaxCases);
    ExpectMetricsBitwiseEqual(reference, batched,
                              ("cold-start batched " + tag).c_str());
  }
}

TEST_F(InferenceTest, BaselineBatchedMetricsBitwiseIdenticalToSerial) {
  SasRec sasrec(ds_.num_items(), config_.d_model, config_.max_seq_len, 7);
  sasrec.AttachDataset(&ds_);
  constexpr int64_t kMaxUsers = 60;

  RankingMetrics reference;
  {
    NumThreadsGuard guard(1);
    LegacyPathScorer legacy(&sasrec, /*parallel=*/false);
    reference = EvaluateRanking(legacy, ds_, EvalSplit::kTest, kMaxUsers);
  }
  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    RankingMetrics batched =
        EvaluateRanking(sasrec, ds_, EvalSplit::kTest, kMaxUsers);
    ExpectMetricsBitwiseEqual(
        reference, batched,
        ("sasrec threads=" + std::to_string(threads)).c_str());
  }
}

TEST_F(InferenceTest, ItemTableCacheRebuildsExactlyWhenStale) {
  const ItemTableCache& cache = model_.item_table_cache();
  EXPECT_EQ(cache.rebuilds(), 0u);

  model_.PrepareForEval();
  EXPECT_TRUE(cache.valid());
  EXPECT_EQ(cache.rebuilds(), 1u);

  // Repeat scoring reuses the cache.
  const std::vector<int32_t> prefix = ds_.TestPrefix(0);
  (void)model_.ScoreItems(prefix);
  (void)model_.ScoreItems(prefix);
  model_.PrepareForEval();
  EXPECT_EQ(cache.rebuilds(), 1u);

  // An optimizer step — with no explicit invalidation anywhere — makes the
  // cache stale via the process-wide param-update version.
  test::TrainOneStep(model_, ds_, config_.max_seq_len);
  EXPECT_FALSE(cache.valid()) << "optimizer step left the cache valid";
  (void)model_.ScoreItems(prefix);
  EXPECT_EQ(cache.rebuilds(), 2u);
  EXPECT_TRUE(cache.valid());

  // Loading a checkpoint (even of the same weights) is a param update.
  const std::string path = ::testing::TempDir() + "/inference_test.ckpt";
  ASSERT_TRUE(model_.SaveToFile(path).ok());
  ASSERT_TRUE(model_.LoadFromFile(path).ok());
  EXPECT_FALSE(cache.valid()) << "checkpoint load left the cache valid";
  (void)model_.ScoreItems(prefix);
  EXPECT_EQ(cache.rebuilds(), 3u);

  // Returning to training mode invalidates explicitly.
  model_.SetTrainingMode(true);
  EXPECT_FALSE(cache.valid());
  model_.PrepareForEval();
  EXPECT_EQ(cache.rebuilds(), 4u);

  // Repeat scoring after the rebuild reuses the cache and is value-stable.
  const std::vector<float> again = model_.ScoreItems(prefix);
  const std::vector<float> once_more = model_.ScoreItems(prefix);
  EXPECT_EQ(cache.rebuilds(), 4u);
  ASSERT_EQ(again.size(), once_more.size());
  EXPECT_EQ(std::memcmp(again.data(), once_more.data(),
                        again.size() * sizeof(float)),
            0);
}

TEST_F(InferenceTest, CacheRebuildIsThreadCountIndependent) {
  std::vector<float> table_1thread;
  {
    NumThreadsGuard guard(1);
    model_.SetTrainingMode(true);  // invalidate
    model_.PrepareForEval();
    table_1thread = model_.ItemRepresentationTable();
  }
  {
    NumThreadsGuard guard(4);
    model_.SetTrainingMode(true);  // invalidate again
    model_.PrepareForEval();
    const std::vector<float>& table_4threads =
        model_.ItemRepresentationTable();
    ASSERT_EQ(table_1thread.size(), table_4threads.size());
    EXPECT_EQ(std::memcmp(table_1thread.data(), table_4threads.data(),
                          table_1thread.size() * sizeof(float)),
              0)
        << "cached item table depends on the thread count";
  }
}

}  // namespace
}  // namespace pmmrec
