// Tests for the trace/telemetry subsystem (utils/trace.*): scope nesting
// and ordering, counter arithmetic, chrome-JSON well-formedness (parsed
// back by a minimal JSON reader), the `off` level recording nothing, the
// per-kernel GEMM FLOP counters matching the analytic 2*m*k*n counts, and
// a concurrent scopes+counters hammer that the tsan build re-runs.

#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "utils/parallel.h"
#include "utils/trace.h"

namespace pmmrec {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// --- Minimal JSON reader (validation only) -----------------------------------
// Recursive-descent pass over the full grammar; returns false on any
// syntax error. Enough to prove the exporters emit well-formed JSON that
// a real consumer (Perfetto) can load.

struct JsonReader {
  const std::string& s;
  size_t pos = 0;

  void SkipWs() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' ||
                              s[pos] == '\t' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (s.compare(pos, len, lit) != 0) return false;
    pos += len;
    return true;
  }
  bool String() {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return false;
      }
      ++pos;
    }
    if (pos >= s.size()) return false;
    ++pos;  // Closing quote.
    return true;
  }
  bool Number() {
    const size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < s.size() && (std::isdigit(s[pos]) || s[pos] == '.' ||
                              s[pos] == 'e' || s[pos] == 'E' ||
                              s[pos] == '-' || s[pos] == '+')) {
      digits = digits || std::isdigit(s[pos]);
      ++pos;
    }
    return digits && pos > start;
  }
  bool Value() {
    SkipWs();
    if (pos >= s.size()) return false;
    switch (s[pos]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    if (s[pos] != '{') return false;
    ++pos;
    SkipWs();
    if (pos < s.size() && s[pos] == '}') { ++pos; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos >= s.size() || s[pos] != ':') return false;
      ++pos;
      if (!Value()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') { ++pos; continue; }
      break;
    }
    SkipWs();
    if (pos >= s.size() || s[pos] != '}') return false;
    ++pos;
    return true;
  }
  bool Array() {
    if (s[pos] != '[') return false;
    ++pos;
    SkipWs();
    if (pos < s.size() && s[pos] == ']') { ++pos; return true; }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') { ++pos; continue; }
      break;
    }
    SkipWs();
    if (pos >= s.size() || s[pos] != ']') return false;
    ++pos;
    return true;
  }
  bool Document() {
    if (!Value()) return false;
    SkipWs();
    return pos == s.size();
  }
};

bool IsValidJson(const std::string& text) {
  JsonReader reader{text};
  return reader.Document();
}

TEST(JsonReaderTest, SelfCheck) {
  EXPECT_TRUE(IsValidJson("{\"a\": [1, 2.5, -3e4], \"b\": \"x\\\"y\"}"));
  EXPECT_TRUE(IsValidJson("[]"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1} extra"));
}

// --- Levels ------------------------------------------------------------------

TEST(TraceLevelTest, GuardRestoresAndEnabledIsOrdered) {
  const trace::Level before = trace::GetLevel();
  {
    trace::LevelGuard guard(trace::Level::kEpoch);
    EXPECT_EQ(trace::GetLevel(), trace::Level::kEpoch);
    EXPECT_TRUE(trace::Enabled(trace::Level::kEpoch));
    EXPECT_FALSE(trace::Enabled(trace::Level::kOp));
  }
  EXPECT_EQ(trace::GetLevel(), before);
}

// --- Scopes ------------------------------------------------------------------

TEST(TraceScopeTest, NestedScopesRecordContainedOrderedEvents) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("outer");
    {
      PMM_TRACE_SCOPE("inner");
    }
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // Chronological by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  // Containment: inner closed before outer.
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  // Both on the recording (this) thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
}

TEST(TraceScopeTest, EpochScopeRecordsAtEpochLevelOnly) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("op_only");  // op level: suppressed at epoch.
    PMM_TRACE_SCOPE_AT("epoch_scope", kEpoch, nullptr);
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "epoch_scope");
}

TEST(TraceScopeTest, DurationCounterAccumulatesNs) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE_AT("timed", kEpoch, "trace_test.timed.ns");
  }
  {
    PMM_TRACE_SCOPE_AT("timed", kEpoch, "trace_test.timed.ns");
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const uint64_t total = events[0].dur_ns + events[1].dur_ns;
  EXPECT_EQ(trace::Counter::Get("trace_test.timed.ns").value(), total);
}

// --- Counters ----------------------------------------------------------------

TEST(TraceCounterTest, AddAndSnapshotArithmetic) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  trace::Counter& counter = trace::Counter::Get("trace_test.arith");
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(3);
  counter.Add(39);
  EXPECT_EQ(counter.value(), 42u);
  // Get interns: same object for the same name.
  EXPECT_EQ(&trace::Counter::Get("trace_test.arith"), &counter);

  PMM_TRACE_COUNT("trace_test.arith", 8);
  EXPECT_EQ(counter.value(), 50u);

  bool found = false;
  for (const auto& [name, value] : trace::CounterSnapshot()) {
    if (name == "trace_test.arith") {
      found = true;
      EXPECT_EQ(value, 50u);
    }
  }
  EXPECT_TRUE(found);

  trace::ResetCounters();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(TraceCounterTest, SnapshotIsSortedByName) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::Counter::Get("trace_test.zz").Add(1);
  trace::Counter::Get("trace_test.aa").Add(1);
  const auto snapshot = trace::CounterSnapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
}

// --- Off level ---------------------------------------------------------------

TEST(TraceOffTest, OffLevelRecordsNoEventsAndMovesNoCounters) {
  trace::LevelGuard guard(trace::Level::kOff);
  trace::ResetForTest();
  const uint64_t before = trace::Counter::Get("trace_test.off").value();
  for (int i = 0; i < 100; ++i) {
    PMM_TRACE_SCOPE("off_scope");
    PMM_TRACE_SCOPE_AT("off_epoch", kEpoch, "trace_test.off.ns");
    PMM_TRACE_COUNT("trace_test.off", 1);
  }
  EXPECT_EQ(trace::NumBufferedEvents(), 0);
  EXPECT_EQ(trace::Counter::Get("trace_test.off").value(), before);
  EXPECT_EQ(trace::Counter::Get("trace_test.off.ns").value(), 0u);
  EXPECT_EQ(trace::SummaryTable(), "");
}

// --- GEMM FLOP counters ------------------------------------------------------

TEST(TraceGemmTest, FlopCountersMatchAnalytic2MKN) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  // One small-path shape and one blocked-path shape; the dispatch-level
  // counters must report the analytic count either way.
  const struct { int64_t m, k, n; } shapes[] = {{7, 9, 11}, {129, 65, 130}};
  uint64_t expected_flops = 0;
  uint64_t expected_calls = 0;
  for (const auto& s : shapes) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k), 1.0f);
    std::vector<float> b(static_cast<size_t>(s.k * s.n), 1.0f);
    std::vector<float> c(static_cast<size_t>(s.m * s.n), 0.0f);
    gemm::GemmNN(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.k, s.n, s.n);
    // B reinterpreted as [n, k] for NT; same element count.
    gemm::GemmNT(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.k, s.k, s.n);
    // A reinterpreted as [k, m] for TN.
    gemm::GemmTN(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.m, s.n, s.n);
    expected_flops += static_cast<uint64_t>(2 * s.m * s.k * s.n);
    expected_calls += 1;
  }
  EXPECT_EQ(trace::Counter::Get("gemm.nn.flops").value(), expected_flops);
  EXPECT_EQ(trace::Counter::Get("gemm.nt.flops").value(), expected_flops);
  EXPECT_EQ(trace::Counter::Get("gemm.tn.flops").value(), expected_flops);
  EXPECT_EQ(trace::Counter::Get("gemm.nn.calls").value(), expected_calls);
  EXPECT_EQ(trace::Counter::Get("gemm.nt.calls").value(), expected_calls);
  EXPECT_EQ(trace::Counter::Get("gemm.tn.calls").value(), expected_calls);
  // Every call took exactly one dispatch path.
  const uint64_t dispatched =
      trace::Counter::Get("gemm.dispatch.small").value() +
      trace::Counter::Get("gemm.dispatch.blocked").value() +
      trace::Counter::Get("gemm.dispatch.reference").value();
  EXPECT_EQ(dispatched, 3 * expected_calls);
}

// --- Export ------------------------------------------------------------------

TEST(TraceExportTest, ChromeTraceAndTelemetryAreWellFormedJson) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("export \"quoted\" name");  // Exercises escaping.
    PMM_TRACE_SCOPE("export_inner");
    PMM_TRACE_COUNT("trace_test.export", 5);
  }
  trace::RecordEpochRow("epoch0", {{"loss", 1.25}, {"hr10", 0.5}});

  const std::string dir = ::testing::TempDir();
  const std::string chrome_path = dir + "/pmmrec_trace_test.json";
  ASSERT_TRUE(trace::WriteChromeTrace(chrome_path).ok());
  const std::string chrome = ReadFile(chrome_path);
  EXPECT_TRUE(IsValidJson(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("export_inner"), std::string::npos);

  const std::string telemetry_path = trace::TelemetryPathFor(chrome_path);
  EXPECT_EQ(telemetry_path, dir + "/pmmrec_trace_test.telemetry.json");
  ASSERT_TRUE(trace::WriteTelemetry(telemetry_path).ok());
  const std::string telemetry = ReadFile(telemetry_path);
  EXPECT_TRUE(IsValidJson(telemetry)) << telemetry;
  EXPECT_NE(telemetry.find("\"counters\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"trace_test.export\": 5"), std::string::npos);
  EXPECT_NE(telemetry.find("\"epochs\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"label\": \"epoch0\""), std::string::npos);

  std::remove(chrome_path.c_str());
  std::remove(telemetry_path.c_str());
}

TEST(TraceExportTest, TelemetryPathDerivation) {
  EXPECT_EQ(trace::TelemetryPathFor("trace.json"), "trace.telemetry.json");
  EXPECT_EQ(trace::TelemetryPathFor("out/t.json"), "out/t.telemetry.json");
  EXPECT_EQ(trace::TelemetryPathFor("trace"), "trace.telemetry.json");
}

TEST(TraceExportTest, SummaryTableListsScopesAndCounters) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("summary_scope");
    PMM_TRACE_COUNT("trace_test.summary", 7);
  }
  const std::string summary = trace::SummaryTable();
  EXPECT_NE(summary.find("summary_scope"), std::string::npos);
  EXPECT_NE(summary.find("trace_test.summary"), std::string::npos);
  EXPECT_NE(summary.find("7"), std::string::npos);
}

// --- Histograms --------------------------------------------------------------

TEST(TraceHistogramTest, BucketGridIsExactBelowKSubAndMonotoneAbove) {
  // Values below kSub each get their own exact bucket.
  for (uint64_t v = 0; v < trace::Histogram::kSub; ++v) {
    const int idx = trace::Histogram::BucketIndex(v);
    EXPECT_EQ(idx, static_cast<int>(v));
    EXPECT_EQ(trace::Histogram::BucketUpperBound(idx), v);
  }
  // Above that: every value lands in a bucket whose upper bound covers it,
  // indices are monotone in the value, and the relative bucket width stays
  // within the documented 1/kSub bound.
  int prev_idx = -1;
  for (const uint64_t v :
       {uint64_t{8}, uint64_t{9}, uint64_t{100}, uint64_t{1000},
        uint64_t{4096}, uint64_t{123456}, uint64_t{1} << 20,
        (uint64_t{1} << 40) + 17}) {
    const int idx = trace::Histogram::BucketIndex(v);
    const uint64_t upper = trace::Histogram::BucketUpperBound(idx);
    EXPECT_GE(upper, v) << "value " << v;
    EXPECT_GT(idx, prev_idx) << "value " << v;
    prev_idx = idx;
    // Upper bound overestimates by at most one sub-bucket width.
    EXPECT_LE(static_cast<double>(upper - v),
              static_cast<double>(v) / trace::Histogram::kSub + 1.0)
        << "value " << v;
  }
}

TEST(TraceHistogramTest, PercentilesOnKnownDistribution) {
  trace::Histogram hist("trace_test.standalone");
  EXPECT_EQ(hist.PercentileUpperBound(50), 0u);  // Empty -> 0.
  for (uint64_t v = 1; v <= 100; ++v) hist.Observe(v);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 50.5);
  // Each percentile's reported upper bound must cover the true value and
  // overshoot by at most one bucket width (12.5%).
  const struct { double p; uint64_t truth; } cases[] = {
      {0, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100}};
  for (const auto& c : cases) {
    const uint64_t got = hist.PercentileUpperBound(c.p);
    EXPECT_GE(got, c.truth) << "p" << c.p;
    EXPECT_LE(static_cast<double>(got),
              static_cast<double>(c.truth) * (1.0 + 1.0 / 8 ) + 1.0)
        << "p" << c.p;
  }
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.PercentileUpperBound(99), 0u);
}

TEST(TraceHistogramTest, ObserveMacroRespectsLevelGate) {
  {
    trace::LevelGuard guard(trace::Level::kOff);
    trace::ResetForTest();
    PMM_TRACE_OBSERVE("trace_test.gated_hist", 7);
    EXPECT_EQ(trace::Histogram::Get("trace_test.gated_hist").count(), 0u);
  }
  {
    trace::LevelGuard guard(trace::Level::kEpoch);
    trace::ResetForTest();
    for (int i = 0; i < 5; ++i) PMM_TRACE_OBSERVE("trace_test.gated_hist", 7);
    EXPECT_EQ(trace::Histogram::Get("trace_test.gated_hist").count(), 5u);
    EXPECT_EQ(trace::Histogram::Get("trace_test.gated_hist").sum(), 35u);
  }
}

TEST(TraceHistogramTest, SnapshotExportAndSummaryIncludeHistograms) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  for (uint64_t v = 1; v <= 64; ++v) {
    PMM_TRACE_OBSERVE("trace_test.latency_us", v * 10);
  }
  const std::vector<trace::HistogramStats> snapshot =
      trace::HistogramSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "trace_test.latency_us");
  EXPECT_EQ(snapshot[0].count, 64u);
  EXPECT_GE(snapshot[0].p95, snapshot[0].p50);
  EXPECT_GE(snapshot[0].p99, snapshot[0].p95);

  const std::string path =
      std::string(::testing::TempDir()) + "/pmmrec_hist_test.telemetry.json";
  ASSERT_TRUE(trace::WriteTelemetry(path).ok());
  const std::string telemetry = ReadFile(path);
  EXPECT_TRUE(IsValidJson(telemetry)) << telemetry;
  EXPECT_NE(telemetry.find("\"histograms\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"trace_test.latency_us\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"p99\""), std::string::npos);
  std::remove(path.c_str());

  const std::string summary = trace::SummaryTable();
  EXPECT_NE(summary.find("Latency histograms"), std::string::npos);
  EXPECT_NE(summary.find("trace_test.latency_us"), std::string::npos);

  // ResetForTest clears registered histograms along with counters.
  trace::ResetForTest();
  EXPECT_EQ(trace::Histogram::Get("trace_test.latency_us").count(), 0u);
  EXPECT_TRUE(trace::HistogramSnapshot().empty());
}

// --- Concurrency (tsan) ------------------------------------------------------

TEST(TraceConcurrencyTest, ScopesAndCountersFromParallelForWorkers) {
  trace::LevelGuard guard(trace::Level::kOp);
  NumThreadsGuard threads(8);
  trace::ResetForTest();
  constexpr int64_t kIters = 4000;
  ParallelFor(0, kIters, /*grain=*/1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      PMM_TRACE_SCOPE("concurrent_scope");
      PMM_TRACE_COUNT("trace_test.concurrent", 2);
    }
  });
  EXPECT_EQ(trace::Counter::Get("trace_test.concurrent").value(),
            static_cast<uint64_t>(2 * kIters));
  // One event per index, spread across the participating threads; the
  // per-thread rings are far larger than kIters, so nothing dropped.
  EXPECT_EQ(trace::NumBufferedEvents(), kIters);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kIters));
  for (const trace::Event& e : events) {
    EXPECT_STREQ(e.name, "concurrent_scope");
  }
}

TEST(TraceConcurrencyTest, RawThreadsHammerOneCounter) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      trace::Counter& counter = trace::Counter::Get("trace_test.hammer");
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace::Counter::Get("trace_test.hammer").value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(TraceConcurrencyTest, ConcurrentExportWhileRecording) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  // One thread records scopes while another snapshots and aggregates —
  // the pattern the at-exit exporter relies on being safe.
  std::thread recorder([] {
    for (int i = 0; i < 2000; ++i) {
      PMM_TRACE_SCOPE("export_race");
      PMM_TRACE_COUNT("trace_test.export_race", 1);
    }
  });
  for (int i = 0; i < 20; ++i) {
    (void)trace::SnapshotEvents();
    (void)trace::CounterSnapshot();
    (void)trace::NumBufferedEvents();
  }
  recorder.join();
  EXPECT_EQ(trace::Counter::Get("trace_test.export_race").value(), 2000u);
}

TEST(TraceConcurrencyTest, RawThreadsHammerOneHistogram) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  constexpr int kThreads = 8;
  constexpr int kObservesPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::Histogram& hist =
          trace::Histogram::Get("trace_test.hammer_hist");
      for (int i = 0; i < kObservesPerThread; ++i) {
        hist.Observe(static_cast<uint64_t>(t * 1000 + i % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  trace::Histogram& hist = trace::Histogram::Get("trace_test.hammer_hist");
  EXPECT_EQ(hist.count(),
            static_cast<uint64_t>(kThreads) * kObservesPerThread);
  // Percentile queries concurrent with observers are exercised above; here
  // the quiesced bucket totals must account for every observation.
  EXPECT_EQ(hist.PercentileUpperBound(100) >= 7000u, true);
}

// --- Telemetry rollup (histogram merge + wire snapshot) ----------------------

TEST(TraceMergeTest, MergeFromIsBucketExact) {
  trace::Histogram a("merge_test.a");
  trace::Histogram b("merge_test.b");
  trace::Histogram all("merge_test.all");
  for (uint64_t v : {0u, 1u, 7u, 8u, 100u, 4096u}) {
    a.Observe(v);
    all.Observe(v);
  }
  for (uint64_t v : {3u, 7u, 1000u, 1u << 20}) {
    b.Observe(v);
    all.Observe(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  for (int i = 0; i < trace::Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(a.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  // Bucket-exact merge implies identical percentile bounds.
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(a.PercentileUpperBound(p), all.PercentileUpperBound(p)) << p;
  }
}

TEST(TraceMergeTest, ConcurrentObserveThenMergeLosesNothing) {
  trace::Histogram part0("merge_test.part0");
  trace::Histogram part1("merge_test.part1");
  constexpr int kThreads = 4;
  constexpr int kObserves = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    trace::Histogram& part = (t % 2 == 0) ? part0 : part1;
    threads.emplace_back([&part] {
      for (int i = 0; i < kObserves; ++i) {
        part.Observe(static_cast<uint64_t>(i % 512));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  trace::Histogram merged("merge_test.merged");
  merged.MergeFrom(part0);
  merged.MergeFrom(part1);
  EXPECT_EQ(merged.count(), static_cast<uint64_t>(kThreads) * kObserves);
  uint64_t bucket_total = 0;
  for (int i = 0; i < trace::Histogram::kNumBuckets; ++i) {
    bucket_total += merged.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, merged.count());
}

TEST(TraceMergeTest, SerializeParseMergeRoundTrip) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  trace::Counter::Get("merge_test.requests").Add(41);
  trace::Histogram& hist = trace::Histogram::Get("merge_test.latency");
  hist.Reset();
  for (uint64_t v : {5u, 5u, 90u, 7000u}) hist.Observe(v);

  const std::string wire = trace::SerializeTelemetry();
  trace::TelemetrySnapshot snapshot;
  ASSERT_TRUE(trace::ParseTelemetry(wire, &snapshot));

  bool saw_counter = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "merge_test.requests") {
      EXPECT_EQ(value, 41u);
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  bool saw_hist = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name != "merge_test.latency") continue;
    saw_hist = true;
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 5u + 5u + 90u + 7000u);
  }
  EXPECT_TRUE(saw_hist);

  // Merging the parsed snapshot back doubles every total (same process,
  // same registry — the router does this across processes).
  trace::MergeTelemetry(snapshot);
  EXPECT_EQ(trace::Counter::Get("merge_test.requests").value(), 82u);
  EXPECT_EQ(trace::Histogram::Get("merge_test.latency").count(), 8u);
  trace::ResetForTest();
}

TEST(TraceMergeTest, ParseRejectsMalformedLines) {
  trace::TelemetrySnapshot snapshot;
  EXPECT_FALSE(trace::ParseTelemetry("C only_name\n", &snapshot));
  EXPECT_FALSE(trace::ParseTelemetry("H h notanumber 3\n", &snapshot));
  EXPECT_FALSE(trace::ParseTelemetry("H h 1 1 99999:1\n", &snapshot));
  EXPECT_FALSE(trace::ParseTelemetry("X what 1\n", &snapshot));
  EXPECT_TRUE(trace::ParseTelemetry("", &snapshot));
}

}  // namespace
}  // namespace pmmrec
