// Tests for the trace/telemetry subsystem (utils/trace.*): scope nesting
// and ordering, counter arithmetic, chrome-JSON well-formedness (parsed
// back by a minimal JSON reader), the `off` level recording nothing, the
// per-kernel GEMM FLOP counters matching the analytic 2*m*k*n counts, and
// a concurrent scopes+counters hammer that the tsan build re-runs.

#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "utils/parallel.h"
#include "utils/trace.h"

namespace pmmrec {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// --- Minimal JSON reader (validation only) -----------------------------------
// Recursive-descent pass over the full grammar; returns false on any
// syntax error. Enough to prove the exporters emit well-formed JSON that
// a real consumer (Perfetto) can load.

struct JsonReader {
  const std::string& s;
  size_t pos = 0;

  void SkipWs() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' ||
                              s[pos] == '\t' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (s.compare(pos, len, lit) != 0) return false;
    pos += len;
    return true;
  }
  bool String() {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return false;
      }
      ++pos;
    }
    if (pos >= s.size()) return false;
    ++pos;  // Closing quote.
    return true;
  }
  bool Number() {
    const size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < s.size() && (std::isdigit(s[pos]) || s[pos] == '.' ||
                              s[pos] == 'e' || s[pos] == 'E' ||
                              s[pos] == '-' || s[pos] == '+')) {
      digits = digits || std::isdigit(s[pos]);
      ++pos;
    }
    return digits && pos > start;
  }
  bool Value() {
    SkipWs();
    if (pos >= s.size()) return false;
    switch (s[pos]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    if (s[pos] != '{') return false;
    ++pos;
    SkipWs();
    if (pos < s.size() && s[pos] == '}') { ++pos; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos >= s.size() || s[pos] != ':') return false;
      ++pos;
      if (!Value()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') { ++pos; continue; }
      break;
    }
    SkipWs();
    if (pos >= s.size() || s[pos] != '}') return false;
    ++pos;
    return true;
  }
  bool Array() {
    if (s[pos] != '[') return false;
    ++pos;
    SkipWs();
    if (pos < s.size() && s[pos] == ']') { ++pos; return true; }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') { ++pos; continue; }
      break;
    }
    SkipWs();
    if (pos >= s.size() || s[pos] != ']') return false;
    ++pos;
    return true;
  }
  bool Document() {
    if (!Value()) return false;
    SkipWs();
    return pos == s.size();
  }
};

bool IsValidJson(const std::string& text) {
  JsonReader reader{text};
  return reader.Document();
}

TEST(JsonReaderTest, SelfCheck) {
  EXPECT_TRUE(IsValidJson("{\"a\": [1, 2.5, -3e4], \"b\": \"x\\\"y\"}"));
  EXPECT_TRUE(IsValidJson("[]"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1} extra"));
}

// --- Levels ------------------------------------------------------------------

TEST(TraceLevelTest, GuardRestoresAndEnabledIsOrdered) {
  const trace::Level before = trace::GetLevel();
  {
    trace::LevelGuard guard(trace::Level::kEpoch);
    EXPECT_EQ(trace::GetLevel(), trace::Level::kEpoch);
    EXPECT_TRUE(trace::Enabled(trace::Level::kEpoch));
    EXPECT_FALSE(trace::Enabled(trace::Level::kOp));
  }
  EXPECT_EQ(trace::GetLevel(), before);
}

// --- Scopes ------------------------------------------------------------------

TEST(TraceScopeTest, NestedScopesRecordContainedOrderedEvents) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("outer");
    {
      PMM_TRACE_SCOPE("inner");
    }
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // Chronological by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  // Containment: inner closed before outer.
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  // Both on the recording (this) thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
}

TEST(TraceScopeTest, EpochScopeRecordsAtEpochLevelOnly) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("op_only");  // op level: suppressed at epoch.
    PMM_TRACE_SCOPE_AT("epoch_scope", kEpoch, nullptr);
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "epoch_scope");
}

TEST(TraceScopeTest, DurationCounterAccumulatesNs) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE_AT("timed", kEpoch, "trace_test.timed.ns");
  }
  {
    PMM_TRACE_SCOPE_AT("timed", kEpoch, "trace_test.timed.ns");
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const uint64_t total = events[0].dur_ns + events[1].dur_ns;
  EXPECT_EQ(trace::Counter::Get("trace_test.timed.ns").value(), total);
}

// --- Counters ----------------------------------------------------------------

TEST(TraceCounterTest, AddAndSnapshotArithmetic) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  trace::Counter& counter = trace::Counter::Get("trace_test.arith");
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(3);
  counter.Add(39);
  EXPECT_EQ(counter.value(), 42u);
  // Get interns: same object for the same name.
  EXPECT_EQ(&trace::Counter::Get("trace_test.arith"), &counter);

  PMM_TRACE_COUNT("trace_test.arith", 8);
  EXPECT_EQ(counter.value(), 50u);

  bool found = false;
  for (const auto& [name, value] : trace::CounterSnapshot()) {
    if (name == "trace_test.arith") {
      found = true;
      EXPECT_EQ(value, 50u);
    }
  }
  EXPECT_TRUE(found);

  trace::ResetCounters();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(TraceCounterTest, SnapshotIsSortedByName) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::Counter::Get("trace_test.zz").Add(1);
  trace::Counter::Get("trace_test.aa").Add(1);
  const auto snapshot = trace::CounterSnapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
}

// --- Off level ---------------------------------------------------------------

TEST(TraceOffTest, OffLevelRecordsNoEventsAndMovesNoCounters) {
  trace::LevelGuard guard(trace::Level::kOff);
  trace::ResetForTest();
  const uint64_t before = trace::Counter::Get("trace_test.off").value();
  for (int i = 0; i < 100; ++i) {
    PMM_TRACE_SCOPE("off_scope");
    PMM_TRACE_SCOPE_AT("off_epoch", kEpoch, "trace_test.off.ns");
    PMM_TRACE_COUNT("trace_test.off", 1);
  }
  EXPECT_EQ(trace::NumBufferedEvents(), 0);
  EXPECT_EQ(trace::Counter::Get("trace_test.off").value(), before);
  EXPECT_EQ(trace::Counter::Get("trace_test.off.ns").value(), 0u);
  EXPECT_EQ(trace::SummaryTable(), "");
}

// --- GEMM FLOP counters ------------------------------------------------------

TEST(TraceGemmTest, FlopCountersMatchAnalytic2MKN) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  // One small-path shape and one blocked-path shape; the dispatch-level
  // counters must report the analytic count either way.
  const struct { int64_t m, k, n; } shapes[] = {{7, 9, 11}, {129, 65, 130}};
  uint64_t expected_flops = 0;
  uint64_t expected_calls = 0;
  for (const auto& s : shapes) {
    std::vector<float> a(static_cast<size_t>(s.m * s.k), 1.0f);
    std::vector<float> b(static_cast<size_t>(s.k * s.n), 1.0f);
    std::vector<float> c(static_cast<size_t>(s.m * s.n), 0.0f);
    gemm::GemmNN(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.k, s.n, s.n);
    // B reinterpreted as [n, k] for NT; same element count.
    gemm::GemmNT(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.k, s.k, s.n);
    // A reinterpreted as [k, m] for TN.
    gemm::GemmTN(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.m, s.n, s.n);
    expected_flops += static_cast<uint64_t>(2 * s.m * s.k * s.n);
    expected_calls += 1;
  }
  EXPECT_EQ(trace::Counter::Get("gemm.nn.flops").value(), expected_flops);
  EXPECT_EQ(trace::Counter::Get("gemm.nt.flops").value(), expected_flops);
  EXPECT_EQ(trace::Counter::Get("gemm.tn.flops").value(), expected_flops);
  EXPECT_EQ(trace::Counter::Get("gemm.nn.calls").value(), expected_calls);
  EXPECT_EQ(trace::Counter::Get("gemm.nt.calls").value(), expected_calls);
  EXPECT_EQ(trace::Counter::Get("gemm.tn.calls").value(), expected_calls);
  // Every call took exactly one dispatch path.
  const uint64_t dispatched =
      trace::Counter::Get("gemm.dispatch.small").value() +
      trace::Counter::Get("gemm.dispatch.blocked").value() +
      trace::Counter::Get("gemm.dispatch.reference").value();
  EXPECT_EQ(dispatched, 3 * expected_calls);
}

// --- Export ------------------------------------------------------------------

TEST(TraceExportTest, ChromeTraceAndTelemetryAreWellFormedJson) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("export \"quoted\" name");  // Exercises escaping.
    PMM_TRACE_SCOPE("export_inner");
    PMM_TRACE_COUNT("trace_test.export", 5);
  }
  trace::RecordEpochRow("epoch0", {{"loss", 1.25}, {"hr10", 0.5}});

  const std::string dir = ::testing::TempDir();
  const std::string chrome_path = dir + "/pmmrec_trace_test.json";
  ASSERT_TRUE(trace::WriteChromeTrace(chrome_path).ok());
  const std::string chrome = ReadFile(chrome_path);
  EXPECT_TRUE(IsValidJson(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("export_inner"), std::string::npos);

  const std::string telemetry_path = trace::TelemetryPathFor(chrome_path);
  EXPECT_EQ(telemetry_path, dir + "/pmmrec_trace_test.telemetry.json");
  ASSERT_TRUE(trace::WriteTelemetry(telemetry_path).ok());
  const std::string telemetry = ReadFile(telemetry_path);
  EXPECT_TRUE(IsValidJson(telemetry)) << telemetry;
  EXPECT_NE(telemetry.find("\"counters\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"trace_test.export\": 5"), std::string::npos);
  EXPECT_NE(telemetry.find("\"epochs\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"label\": \"epoch0\""), std::string::npos);

  std::remove(chrome_path.c_str());
  std::remove(telemetry_path.c_str());
}

TEST(TraceExportTest, TelemetryPathDerivation) {
  EXPECT_EQ(trace::TelemetryPathFor("trace.json"), "trace.telemetry.json");
  EXPECT_EQ(trace::TelemetryPathFor("out/t.json"), "out/t.telemetry.json");
  EXPECT_EQ(trace::TelemetryPathFor("trace"), "trace.telemetry.json");
}

TEST(TraceExportTest, SummaryTableListsScopesAndCounters) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  {
    PMM_TRACE_SCOPE("summary_scope");
    PMM_TRACE_COUNT("trace_test.summary", 7);
  }
  const std::string summary = trace::SummaryTable();
  EXPECT_NE(summary.find("summary_scope"), std::string::npos);
  EXPECT_NE(summary.find("trace_test.summary"), std::string::npos);
  EXPECT_NE(summary.find("7"), std::string::npos);
}

// --- Concurrency (tsan) ------------------------------------------------------

TEST(TraceConcurrencyTest, ScopesAndCountersFromParallelForWorkers) {
  trace::LevelGuard guard(trace::Level::kOp);
  NumThreadsGuard threads(8);
  trace::ResetForTest();
  constexpr int64_t kIters = 4000;
  ParallelFor(0, kIters, /*grain=*/1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      PMM_TRACE_SCOPE("concurrent_scope");
      PMM_TRACE_COUNT("trace_test.concurrent", 2);
    }
  });
  EXPECT_EQ(trace::Counter::Get("trace_test.concurrent").value(),
            static_cast<uint64_t>(2 * kIters));
  // One event per index, spread across the participating threads; the
  // per-thread rings are far larger than kIters, so nothing dropped.
  EXPECT_EQ(trace::NumBufferedEvents(), kIters);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kIters));
  for (const trace::Event& e : events) {
    EXPECT_STREQ(e.name, "concurrent_scope");
  }
}

TEST(TraceConcurrencyTest, RawThreadsHammerOneCounter) {
  trace::LevelGuard guard(trace::Level::kEpoch);
  trace::ResetForTest();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      trace::Counter& counter = trace::Counter::Get("trace_test.hammer");
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace::Counter::Get("trace_test.hammer").value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(TraceConcurrencyTest, ConcurrentExportWhileRecording) {
  trace::LevelGuard guard(trace::Level::kOp);
  trace::ResetForTest();
  // One thread records scopes while another snapshots and aggregates —
  // the pattern the at-exit exporter relies on being safe.
  std::thread recorder([] {
    for (int i = 0; i < 2000; ++i) {
      PMM_TRACE_SCOPE("export_race");
      PMM_TRACE_COUNT("trace_test.export_race", 1);
    }
  });
  for (int i = 0; i < 20; ++i) {
    (void)trace::SnapshotEvents();
    (void)trace::CounterSnapshot();
    (void)trace::NumBufferedEvents();
  }
  recorder.join();
  EXPECT_EQ(trace::Counter::Get("trace_test.export_race").value(), 2000u);
}

}  // namespace
}  // namespace pmmrec
