// Tests for the tensor buffer arena (utils/arena.*): recycling behavior,
// the zero-fill invariant, the no-aliasing guarantee across autograd
// Backward(), and thread safety of acquire/release (run under tsan via
// the `tsan` ctest label).

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "utils/arena.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace pmmrec {
namespace {

// The arena honours PMMREC_ARENA=0; recycling assertions only make sense
// when it is on (the default). Guard so the suite stays meaningful either
// way.
bool ArenaOn() { return BufferArena::Global().enabled(); }

TEST(ArenaTest, ReusesExactSizeBufferZeroFilled) {
  if (!ArenaOn()) GTEST_SKIP() << "arena disabled via PMMREC_ARENA=0";
  BufferArena& arena = BufferArena::Global();
  arena.Trim();

  std::vector<float> v = arena.AcquireVec(4096);
  ASSERT_EQ(v.size(), 4096u);
  const float* raw = v.data();
  for (float& x : v) x = 7.0f;  // Dirty it before returning.
  arena.Release(std::move(v));

  // Exact-size reacquire must hand back the same allocation, zeroed.
  std::vector<float> w = arena.AcquireVec(4096);
  EXPECT_EQ(w.data(), raw);
  for (size_t i = 0; i < w.size(); ++i) ASSERT_EQ(w[i], 0.0f) << i;

  // A different size must not be served from that bucket.
  std::vector<float> u = arena.AcquireVec(4097);
  EXPECT_NE(u.data(), raw);
  arena.Release(std::move(w));
  arena.Release(std::move(u));
  arena.Trim();
}

TEST(ArenaTest, StatsTrackHitsMissesAndTrim) {
  if (!ArenaOn()) GTEST_SKIP() << "arena disabled via PMMREC_ARENA=0";
  BufferArena& arena = BufferArena::Global();
  arena.Trim();
  const BufferArena::Stats before = arena.stats();

  std::vector<float> v = arena.AcquireVec(512);  // Cold cache: miss.
  arena.Release(std::move(v));
  std::vector<float> w = arena.AcquireVec(512);  // Warm: hit.
  arena.Release(std::move(w));

  const BufferArena::Stats after = arena.stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.released - before.released, 2u);
  EXPECT_EQ(after.cached_bytes, static_cast<int64_t>(512 * sizeof(float)));

  arena.Trim();
  EXPECT_EQ(arena.stats().cached_bytes, 0);
}

TEST(ArenaTest, EpochScopeTrimsOnExit) {
  if (!ArenaOn()) GTEST_SKIP() << "arena disabled via PMMREC_ARENA=0";
  BufferArena& arena = BufferArena::Global();
  arena.Trim();
  {
    ArenaEpochScope scope;
    arena.Release(arena.AcquireVec(256));
    EXPECT_GT(arena.stats().cached_bytes, 0);
  }
  EXPECT_EQ(arena.stats().cached_bytes, 0);
}

// The core safety property: storage recycled through a full
// forward/backward round-trip never aliases any still-live tensor's data
// or grad. We build a graph, record every live buffer address, destroy
// the graph (returning its buffers to the arena), then allocate fresh
// tensors of the same shapes and check the survivors were untouched.
TEST(ArenaTest, RecycledBuffersNeverAliasLiveTensors) {
  if (!ArenaOn()) GTEST_SKIP() << "arena disabled via PMMREC_ARENA=0";
  BufferArena::Global().Trim();
  Rng rng(7);

  // Survivors: parameters that stay alive across the "step" boundary,
  // exactly like model weights across training steps.
  Tensor w1 = Tensor::Randn(Shape{24, 24}, rng, 0.5f, true);
  Tensor w2 = Tensor::Randn(Shape{24, 24}, rng, 0.5f, true);

  std::vector<float> w1_snapshot(w1.data(), w1.data() + w1.numel());
  std::vector<float> w2_snapshot(w2.data(), w2.data() + w2.numel());

  std::set<const float*> live;
  live.insert(w1.data());
  live.insert(w2.data());

  {
    // Transient graph: activations + grads all go back to the arena when
    // this scope closes.
    Tensor x = Tensor::Randn(Shape{8, 24}, rng);
    Tensor h = Relu(MatMul(x, w1));
    Tensor out = MatMul(h, w2);
    Tensor loss = SumAll(Square(out));
    loss.Backward();
    ASSERT_TRUE(w1.has_grad());
    ASSERT_TRUE(w2.has_grad());
    live.insert(w1.grad_data());
    live.insert(w2.grad_data());

    std::vector<float> g1(w1.grad_data(), w1.grad_data() + w1.numel());
    std::vector<float> g2(w2.grad_data(), w2.grad_data() + w2.numel());

    // Allocate a pile of same-shaped tensors while the graph is live:
    // none may reuse a live buffer.
    for (int i = 0; i < 8; ++i) {
      Tensor fresh = Tensor::Zeros(Shape{24, 24});
      EXPECT_EQ(live.count(fresh.data()), 0u) << "alias on iteration " << i;
    }

    // Grad contents must be unaffected by those allocations.
    for (int64_t i = 0; i < w1.numel(); ++i) {
      ASSERT_EQ(w1.grad_data()[i], g1[static_cast<size_t>(i)]);
    }
    for (int64_t i = 0; i < w2.numel(); ++i) {
      ASSERT_EQ(w2.grad_data()[i], g2[static_cast<size_t>(i)]);
    }
  }

  // Graph gone; its buffers are now legitimately recyclable. Burn through
  // enough allocations to drain every bucket the graph filled.
  for (int i = 0; i < 32; ++i) {
    Tensor recycled = Tensor::Zeros(Shape{8, 24});
    Tensor recycled2 = Tensor::Zeros(Shape{24, 24});
    // Still must not alias the surviving parameters or their grads.
    EXPECT_EQ(live.count(recycled.data()), 0u);
    EXPECT_EQ(live.count(recycled2.data()), 0u);
  }

  // Survivor values intact after heavy recycling.
  for (int64_t i = 0; i < w1.numel(); ++i) {
    ASSERT_EQ(w1.data()[i], w1_snapshot[static_cast<size_t>(i)]);
  }
  for (int64_t i = 0; i < w2.numel(); ++i) {
    ASSERT_EQ(w2.data()[i], w2_snapshot[static_cast<size_t>(i)]);
  }
  BufferArena::Global().Trim();
}

// Buffers released while a graph from a *previous* Backward() is still
// referenced through tensors must not be handed out — i.e. the deleter
// path (not manual Release calls) is the only entry point from tensors.
TEST(ArenaTest, TensorStorageRecyclesOnlyAfterLastReference) {
  if (!ArenaOn()) GTEST_SKIP() << "arena disabled via PMMREC_ARENA=0";
  BufferArena& arena = BufferArena::Global();
  arena.Trim();
  const BufferArena::Stats start = arena.stats();

  const float* addr = nullptr;
  {
    Tensor a = Tensor::Zeros(Shape{333});
    addr = a.data();
    {
      Tensor alias = a;  // Second reference to the same storage.
      (void)alias;
    }
    // First reference still live: nothing returned yet.
    EXPECT_EQ(arena.stats().released, start.released);
  }
  // Last reference dropped: storage is back in the pool.
  EXPECT_EQ(arena.stats().released, start.released + 1);
  Tensor b = Tensor::Zeros(Shape{333});
  EXPECT_EQ(b.data(), addr);
  for (int64_t i = 0; i < b.numel(); ++i) ASSERT_EQ(b.data()[i], 0.0f);
}

// Concurrent acquire/release hammering for tsan. Each task checks its
// buffers are zeroed and disjoint from one another within the task.
TEST(ArenaTest, ConcurrentAcquireReleaseIsRaceFree) {
  if (!ArenaOn()) GTEST_SKIP() << "arena disabled via PMMREC_ARENA=0";
  BufferArena& arena = BufferArena::Global();
  arena.Trim();
  NumThreadsGuard guard(7);
  ParallelFor(0, 64, 1, [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      const size_t n = 128 + static_cast<size_t>(t % 5) * 64;
      std::vector<float> a = arena.AcquireVec(n);
      std::vector<float> b = arena.AcquireVec(n);
      ASSERT_NE(a.data(), b.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a[i], 0.0f);
        ASSERT_EQ(b[i], 0.0f);
        a[i] = static_cast<float>(t);
        b[i] = static_cast<float>(-t);
      }
      arena.Release(std::move(a));
      arena.Release(std::move(b));
    }
  });
  arena.Trim();
}

// Tensor ops running in parallel allocate and free through the arena on
// every node; a short end-to-end burst under threads for tsan coverage.
TEST(ArenaTest, ParallelOpsThroughArena) {
  NumThreadsGuard guard(7);
  Rng rng(11);
  Tensor w = Tensor::Randn(Shape{32, 32}, rng, 0.5f, true);
  for (int step = 0; step < 4; ++step) {
    Tensor x = Tensor::Randn(Shape{16, 32}, rng);
    Tensor loss = SumAll(Square(MatMul(x, w)));
    w.ZeroGrad();
    loss.Backward();
    ASSERT_TRUE(w.has_grad());
  }
}

}  // namespace
}  // namespace pmmrec
