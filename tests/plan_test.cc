// Recorded execution plans (core/plan.h). The load-bearing claims:
//
//  1. A replayed plan is bitwise identical to eager dispatch: the direct
//     record/replay round-trip — including the bias+GELU and last-row
//     LayerNorm(+MatMulNT) fusion rewrites — reproduces the eager forward
//     bit-for-bit on fresh inputs.
//  2. Planned full-catalogue scoring (ScoreUsersBatched) equals the eager
//     twin bitwise across {1, 4} threads, on both the recording pass and
//     the replay pass, with zero record failures (no group shape silently
//     falls back to eager).
//  3. Through the broker, planned responses are bitwise the eager model's
//     responses for every {exact, int8, ivf, ivf+int8} serving mode x
//     {1, 4} workers x {1, 4} threads combination — plans only change how
//     the forward executes, never its bits.
//  4. Invalidation: a parameter update under concurrent load flushes the
//     cache exactly once and re-records each hot key exactly once, and
//     every post-update response matches the eager post-update reference.
//     A stale plan refuses to replay (death test), as does recording
//     outside InferenceMode or replaying a mismatched input shape.
//  5. PlanCache contract: LRU eviction at capacity keeps surviving plans
//     replayable; Acquire flushes on both a ParamUpdateVersion bump and
//     an item-table pointer swap; an abandoned record claim is dropped so
//     the key can be recorded later.
//
// Labelled `plan`; CI also runs this suite under PMMREC_SANITIZE=thread.

#include "core/plan.h"

#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "serve/broker.h"
#include "tests/test_util.h"
#include "utils/parallel.h"

namespace pmmrec {
namespace {

using serve::BrokerOptions;
using serve::Request;
using serve::RequestBroker;
using serve::Response;
using serve::ServeStatus;
using test::ExpectBitwise;

using PlanTest = test::SuiteDatasetTest;

// All responses for `prefixes` through a broker over `model`.
std::vector<std::vector<ScoredId>> BrokerResponses(
    PMMRecModel* model, const std::vector<std::vector<int32_t>>& prefixes,
    int64_t topk, int64_t workers) {
  BrokerOptions options;
  options.num_workers = workers;
  options.max_batch = 8;
  options.max_wait_us = 200;
  options.queue_capacity = 64;
  RequestBroker broker(model, options);
  std::vector<std::future<Response>> futures;
  for (const auto& prefix : prefixes) {
    Request request;
    request.prefix = prefix;
    request.topk = topk;
    futures.push_back(broker.Submit(std::move(request)));
  }
  std::vector<std::vector<ScoredId>> out;
  for (auto& future : futures) {
    Response response = future.get();
    EXPECT_EQ(response.status, ServeStatus::kOk);
    out.push_back(std::move(response.items));
  }
  return out;
}

// --- Claim 1: direct record/replay round-trip with fusion. ------------------

TEST_F(PlanTest, DirectRecordReplayBitwiseEqualWithFusedSteps) {
  PMMRecModel model(config_, 42);
  model.AttachDataset(&ds_);
  model.PrepareForEval();
  const std::vector<float>& table = model.ItemRepresentationTable();
  const int64_t d = config_.d_model;
  constexpr int64_t kG = 2;
  constexpr int64_t kLen = 3;

  const auto fill = [&](Tensor& seq, const std::vector<int32_t>& items) {
    for (size_t i = 0; i < items.size(); ++i) {
      std::memcpy(seq.data() + static_cast<int64_t>(i) * d,
                  table.data() + static_cast<int64_t>(items[i]) * d,
                  static_cast<size_t>(d) * sizeof(float));
    }
  };

  InferenceMode inference;
  const auto forward = [&](const Tensor& s) {
    Tensor hidden = model.user_encoder().Forward(s);
    Tensor last = Reshape(Slice(hidden, /*dim=*/1, /*start=*/kLen - 1,
                                /*length=*/1),
                          Shape{kG, d});
    return MatMulNT(last, model.item_table_cache().table(0));
  };

  Tensor seq = Tensor::Zeros(Shape{kG, kLen, d});
  fill(seq, {0, 1, 2, 3, 4, 5});
  Tensor recorded_eager;
  std::shared_ptr<ExecutionPlan> plan =
      ExecutionPlan::Record(seq, forward, &recorded_eager);
  ASSERT_NE(plan, nullptr) << "recording was poisoned";
  // Both rewrites must fire on this forward: one bias+GELU fold per user
  // block, plus the last-row LayerNorm + MatMulNT tail.
  EXPECT_GE(plan->num_fused_steps(), 3);
  EXPECT_GT(plan->num_steps(), 0);

  // Replay on a fresh input; the reference is the plain eager forward.
  Tensor seq2 = Tensor::Zeros(Shape{kG, kLen, d});
  fill(seq2, {6, 7, 8, 9, 10, 11});
  Tensor want = forward(seq2);
  plan->Replay(seq2.data(), seq2.numel());
  const Tensor& got = plan->output();
  ASSERT_EQ(got.numel(), want.numel());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<size_t>(want.numel()) * sizeof(float)),
            0)
      << "replayed scores diverge from eager dispatch";

  // And replaying the original input reproduces the recording's result.
  plan->Replay(seq.data(), seq.numel());
  EXPECT_EQ(std::memcmp(plan->output().data(), recorded_eager.data(),
                        static_cast<size_t>(recorded_eager.numel()) *
                            sizeof(float)),
            0);
}

// --- Claim 2: planned ScoreUsersBatched equals the eager twin. --------------

TEST_F(PlanTest, BatchedScoresBitwiseEqualEagerAcrossThreadsAndPasses) {
  PMMRecModel eager(config_, 42);
  eager.AttachDataset(&ds_);
  PMMRecConfig planned_config = config_;
  planned_config.planned_inference = true;
  PMMRecModel planned(planned_config, 42);
  planned.AttachDataset(&ds_);

  const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(40);
  const int64_t n_items = ds_.num_items();
  std::vector<float> want(prefixes.size() * static_cast<size_t>(n_items));
  {
    NumThreadsGuard guard(1);
    eager.ScoreUsersBatched(prefixes, want.data());
  }

  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    NumThreadsGuard guard(threads);
    // Pass 0 records every length group's plan, pass 1 replays it — both
    // must be bitwise the eager scores.
    for (const int pass : {0, 1}) {
      std::vector<float> got(want.size());
      planned.ScoreUsersBatched(prefixes, got.data());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            want.size() * sizeof(float)),
                0)
          << "threads=" << threads << " pass=" << pass;
    }
  }

  const PlanCache::Stats stats = planned.plan_cache().stats();
  EXPECT_GT(stats.records, 0) << "no plan was ever recorded";
  EXPECT_GT(stats.hits, 0) << "no plan was ever replayed";
  EXPECT_EQ(stats.record_failures, 0)
      << "some group shape poisoned its recording and fell back to eager";
}

// --- Claim 3: broker matrix across serving modes, workers, threads. ---------

TEST_F(PlanTest, BrokerResponsesBitwiseEqualEagerAcrossModes) {
  constexpr int64_t kTopK = 10;
  struct ModeCase {
    const char* name;
    bool quant;
    bool ann;
  };
  const ModeCase kModes[] = {{"exact", false, false},
                             {"int8", true, false},
                             {"ivf", false, true},
                             {"ivf+int8", true, true}};

  for (const ModeCase& mode : kModes) {
    PMMRecConfig eager_config = config_;
    eager_config.quantized_serving = mode.quant;
    eager_config.ann_serving = mode.ann;
    PMMRecConfig planned_config = eager_config;
    planned_config.planned_inference = true;

    PMMRecModel eager(eager_config, 42);
    eager.AttachDataset(&ds_);
    PMMRecModel planned(planned_config, 42);
    planned.AttachDataset(&ds_);
    ASSERT_TRUE(planned.PlannedInferenceEnabled());

    const std::vector<std::vector<int32_t>> prefixes = MixedPrefixes(16);
    std::vector<std::vector<ScoredId>> want;
    {
      NumThreadsGuard guard(1);
      want = BrokerResponses(&eager, prefixes, kTopK, /*workers=*/1);
    }

    for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
      NumThreadsGuard guard(threads);
      for (const int64_t workers : {int64_t{1}, int64_t{4}}) {
        const std::vector<std::vector<ScoredId>> got =
            BrokerResponses(&planned, prefixes, kTopK, workers);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          ExpectBitwise(got[i], want[i],
                        std::string(mode.name) +
                            " threads=" + std::to_string(threads) +
                            " workers=" + std::to_string(workers) +
                            " request=" + std::to_string(i));
        }
      }
    }

    const PlanCache::Stats stats = planned.plan_cache().stats();
    EXPECT_GT(stats.records, 0) << mode.name;
    EXPECT_GT(stats.hits, 0) << mode.name;
    EXPECT_EQ(stats.record_failures, 0) << mode.name;
  }
}

// --- Claim 4: invalidation under concurrent load. ---------------------------

TEST_F(PlanTest, ParamUpdateMidLoadRevalidatesPlansExactlyOnce) {
  constexpr int64_t kTopK = 10;
  PMMRecConfig planned_config = config_;
  planned_config.planned_inference = true;
  PMMRecModel model(planned_config, 42);
  model.AttachDataset(&ds_);

  BrokerOptions options;
  options.num_workers = 2;
  options.max_batch = 1;  // Every request is its own batch: maximal
  options.max_wait_us = 0;  // concurrency against the re-record protocol.
  RequestBroker broker(&model, options);

  // Warm request: records the plan for this prefix's (len, 1) key.
  const std::vector<int32_t> prefix = ds_.TestPrefix(0);
  const Response warm = broker.Recommend(prefix, kTopK);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  const PlanCache::Stats before = model.plan_cache().stats();
  const uint64_t rebuilds_before = model.item_table_cache().rebuilds();

  // A real optimizer step: item table AND every recorded plan go stale.
  test::TrainOneStep(model, ds_, config_.max_seq_len);

  // Concurrent clients all hit the same stale key.
  constexpr int64_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Response> responses(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      responses[static_cast<size_t>(c)] = broker.Recommend(prefix, kTopK);
    });
  }
  for (std::thread& t : clients) t.join();

  // One table rebuild, one cache flush, one re-record — no matter how many
  // clients raced the stale state.
  EXPECT_EQ(model.item_table_cache().rebuilds(), rebuilds_before + 1);
  const PlanCache::Stats after = model.plan_cache().stats();
  EXPECT_EQ(after.invalidation_flushes - before.invalidation_flushes, 1);
  EXPECT_EQ(after.misses - before.misses, 1)
      << "the stale key was claimed for recording more than once";
  EXPECT_EQ(after.records - before.records, 1)
      << "the stale key was re-recorded more than once";
  EXPECT_EQ(after.record_failures, before.record_failures);

  // No stale plan served: every response is bitwise the post-update eager
  // reference.
  model.SetPlannedInference(false);
  const std::vector<ScoredId> want = test::SerialTopK(model, prefix, kTopK);
  model.SetPlannedInference(true);
  for (int64_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[static_cast<size_t>(c)].status, ServeStatus::kOk);
    ExpectBitwise(responses[static_cast<size_t>(c)].items, want,
                  "post-update client " + std::to_string(c));
  }
}

// --- Claim 5: PlanCache contract. -------------------------------------------

// A tiny real plan (elementwise GELU) for cache-mechanics tests.
std::shared_ptr<ExecutionPlan> RecordGeluPlan(int64_t n) {
  Tensor in = Tensor::Zeros(Shape{n});
  for (int64_t i = 0; i < n; ++i) {
    in.data()[i] = 0.25f * static_cast<float>(i) - 1.0f;
  }
  Tensor out;
  return ExecutionPlan::Record(
      in, [](const Tensor& t) { return Gelu(t); }, &out);
}

TEST(PlanCacheTest, LruEvictionKeepsSurvivingPlansReplayable) {
  InferenceMode inference;
  PlanCache cache(2);
  float table = 0.0f;  // identity token only

  const auto record = [&](int64_t len) {
    PlanCache::Lease lease =
        cache.Acquire(PlanKey{PlanVariant::kUserRep, len, 1}, &table);
    ASSERT_EQ(lease.mode(), PlanCache::Mode::kRecord);
    std::shared_ptr<ExecutionPlan> plan = RecordGeluPlan(4);
    ASSERT_NE(plan, nullptr);
    lease.Commit(std::move(plan));
  };

  record(1);
  record(2);
  EXPECT_EQ(cache.size(), 2);

  // Touch key 1 so key 2 is the LRU victim.
  {
    PlanCache::Lease lease =
        cache.Acquire(PlanKey{PlanVariant::kUserRep, 1, 1}, &table);
    EXPECT_EQ(lease.mode(), PlanCache::Mode::kReplay);
  }
  record(3);  // at capacity: evicts key 2
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.stats().evictions, 1);

  // The survivor replays correctly: bitwise the eager op on fresh input.
  // (Checked before probing key 2 below — a miss at capacity inserts a
  // building entry and evicts the LRU, which would be key 1.)
  {
    PlanCache::Lease lease =
        cache.Acquire(PlanKey{PlanVariant::kUserRep, 1, 1}, &table);
    ASSERT_EQ(lease.mode(), PlanCache::Mode::kReplay);
    Tensor fresh = Tensor::Zeros(Shape{4});
    for (int64_t i = 0; i < 4; ++i) {
      fresh.data()[i] = 0.5f * static_cast<float>(i) - 0.7f;
    }
    const Tensor want = Gelu(fresh);
    lease.plan()->Replay(fresh.data(), 4);
    EXPECT_EQ(std::memcmp(lease.plan()->output().data(), want.data(),
                          4 * sizeof(float)),
              0);
  }

  {
    PlanCache::Lease lease =
        cache.Acquire(PlanKey{PlanVariant::kUserRep, 2, 1}, &table);
    EXPECT_EQ(lease.mode(), PlanCache::Mode::kRecord)
        << "evicted key still resident";
    // Abandoning the claim (no Commit) must drop the entry...
  }
  {
    PlanCache::Lease lease =
        cache.Acquire(PlanKey{PlanVariant::kUserRep, 2, 1}, &table);
    EXPECT_EQ(lease.mode(), PlanCache::Mode::kRecord)
        << "abandoned record claim was not dropped";
  }
}

TEST(PlanCacheTest, AcquireFlushesOnVersionBumpAndTableSwap) {
  InferenceMode inference;
  PlanCache cache(4);
  float table_a = 0.0f, table_b = 0.0f;
  const PlanKey key{PlanVariant::kFullScore, 5, 2};

  const auto record = [&](const void* table) {
    PlanCache::Lease lease = cache.Acquire(key, table);
    ASSERT_EQ(lease.mode(), PlanCache::Mode::kRecord);
    std::shared_ptr<ExecutionPlan> plan = RecordGeluPlan(4);
    ASSERT_NE(plan, nullptr);
    lease.Commit(std::move(plan));
  };

  record(&table_a);
  {
    PlanCache::Lease lease = cache.Acquire(key, &table_a);
    EXPECT_EQ(lease.mode(), PlanCache::Mode::kReplay);
  }
  EXPECT_EQ(cache.stats().invalidation_flushes, 0);

  // A parameter update flushes everything at the next Acquire.
  BumpParamUpdateVersion();
  record(&table_a);
  EXPECT_EQ(cache.stats().invalidation_flushes, 1);

  // So does an item-table rebuild at the same param version (the pointer
  // moves even though the version did not).
  {
    PlanCache::Lease lease = cache.Acquire(key, &table_b);
    EXPECT_EQ(lease.mode(), PlanCache::Mode::kRecord);
  }
  EXPECT_EQ(cache.stats().invalidation_flushes, 2);
}

// --- Claim 4 (contract death tests). ----------------------------------------

TEST(PlanDeathTest, RecordingWithoutInferenceModeDies) {
  Tensor in = Tensor::Zeros(Shape{4});
  Tensor out;
  EXPECT_DEATH(ExecutionPlan::Record(
                   in, [](const Tensor& t) { return Gelu(t); }, &out),
               "InferenceMode");
}

TEST(PlanDeathTest, StalePlanReplayDies) {
  InferenceMode inference;
  std::shared_ptr<ExecutionPlan> plan = RecordGeluPlan(4);
  ASSERT_NE(plan, nullptr);
  plan->Replay();  // current version: fine
  EXPECT_DEATH(
      {
        BumpParamUpdateVersion();
        plan->Replay();
      },
      "stale execution plan");
}

TEST(PlanDeathTest, MismatchedReplayShapeDies) {
  InferenceMode inference;
  std::shared_ptr<ExecutionPlan> plan = RecordGeluPlan(4);
  ASSERT_NE(plan, nullptr);
  std::vector<float> wrong(8, 0.0f);
  EXPECT_DEATH(plan->Replay(wrong.data(), 8), "PMM_CHECK");
}

}  // namespace
}  // namespace pmmrec
