// Overhead and non-interference guarantees of the trace subsystem.
//
// Two contracts pinned here:
//  1. "off costs nothing": a full pre-training step (forward with all four
//     loss terms + backward) at trace level off never allocates a trace
//     ring buffer, records no event, and moves no counter. The first test
//     MUST run before anything in this binary records an event — buffers,
//     once allocated, stay registered for the process lifetime.
//  2. Tracing never changes results: the loss/metric trajectory of a full
//     fit is bitwise identical across trace levels {off, op} and thread
//     counts {1, 4} — instrumentation only reads clocks and bumps
//     counters, it never touches tensor math.

#include <vector>

#include <gtest/gtest.h>

#include "core/pmmrec.h"
#include "data/generator.h"
#include "utils/parallel.h"
#include "utils/trace.h"

namespace pmmrec {
namespace {

// Declaration order matters in this file: this test's zero-allocation
// assertions rely on no earlier test having recorded any trace event.
TEST(TraceOverheadTest, OffLevelStepAllocatesNoTraceState) {
  trace::LevelGuard off(trace::Level::kOff);
  ASSERT_EQ(trace::NumThreadBuffers(), 0)
      << "an earlier test already recorded events; keep this test first";

  BenchmarkSuite suite = BuildBenchmarkSuite(0.2, 13);
  const Dataset& ds = suite.sources[0];
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  model.AttachDataset(&ds);
  model.SetTrainingMode(true);
  model.SetPretrainingObjectives(true);  // All loss-term scopes on the path.
  std::vector<int64_t> users;
  for (int64_t u = 0; u < 8; ++u) users.push_back(u);
  const SeqBatch batch = MakeTrainBatch(ds, users, config.max_seq_len);
  Tensor loss = model.TrainStepLoss(batch);
  ASSERT_TRUE(loss.defined());
  loss.Backward();
  model.ZeroGrad();

  EXPECT_EQ(trace::NumThreadBuffers(), 0);
  EXPECT_EQ(trace::NumBufferedEvents(), 0);
  EXPECT_TRUE(trace::CounterSnapshot().empty());
  EXPECT_EQ(trace::NumEpochRows(), 0);
}

FitResult FitAt(trace::Level level, int64_t threads) {
  trace::LevelGuard trace_guard(level);
  NumThreadsGuard thread_guard(threads);
  BenchmarkSuite suite = BuildBenchmarkSuite(0.25, 11);
  const Dataset& ds = suite.sources[0];
  PMMRecConfig config = PMMRecConfig::FromDataset(ds);
  PMMRecModel model(config, 42);
  FitOptions opts;
  opts.max_epochs = 2;
  opts.eval_users = 40;
  opts.seed = 7;
  return FitModel(model, ds, opts);
}

void ExpectBitwiseEqual(const FitResult& a, const FitResult& b,
                        const char* what) {
  ASSERT_EQ(a.epochs_run, b.epochs_run) << what;
  ASSERT_EQ(a.val_hr10_per_epoch.size(), b.val_hr10_per_epoch.size()) << what;
  for (size_t e = 0; e < a.val_hr10_per_epoch.size(); ++e) {
    EXPECT_EQ(a.val_hr10_per_epoch[e], b.val_hr10_per_epoch[e])
        << what << " diverged at epoch " << e;
  }
  EXPECT_EQ(a.final_train_loss, b.final_train_loss) << what;
  EXPECT_EQ(a.best_val_hr10, b.best_val_hr10) << what;
  EXPECT_EQ(a.best_epoch, b.best_epoch) << what;
}

TEST(TraceOverheadTest, LossTrajectoryBitwiseIdenticalAcrossLevelsAndThreads) {
  const FitResult off_serial = FitAt(trace::Level::kOff, 1);
  const FitResult off_parallel = FitAt(trace::Level::kOff, 4);
  const FitResult op_serial = FitAt(trace::Level::kOp, 1);
  const FitResult op_parallel = FitAt(trace::Level::kOp, 4);

  ASSERT_EQ(off_serial.epochs_run, 2);
  ExpectBitwiseEqual(off_serial, off_parallel, "off 1 vs off 4 threads");
  ExpectBitwiseEqual(off_serial, op_serial, "off vs op at 1 thread");
  ExpectBitwiseEqual(off_serial, op_parallel, "off 1 thread vs op 4 threads");

  // The op-level runs did record: buffers exist, events and epoch rows
  // were captured, counters moved — tracing was genuinely on.
  EXPECT_GT(trace::NumThreadBuffers(), 0);
  EXPECT_GT(trace::NumBufferedEvents(), 0);
  EXPECT_GE(trace::NumEpochRows(), 4);  // 2 epochs x 2 op-level fits.
  EXPECT_FALSE(trace::CounterSnapshot().empty());
}

}  // namespace
}  // namespace pmmrec
