// Contract tests of the k-means coarse quantizer (baselines/kmeans.h):
// thread-count and seed determinism (the IVF index's build determinism
// rests on both), empty-cluster re-seeding, degenerate inputs, and the
// checked preconditions.

#include "baselines/kmeans.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace pmmrec {
namespace {

std::vector<float> RandomPoints(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> points(static_cast<size_t>(n * dim));
  for (float& p : points) p = rng.NormalFloat();
  return points;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(KMeansTest, DeterministicAcrossThreadCounts) {
  const std::vector<float> points = RandomPoints(257, 7, 11);
  std::vector<std::vector<float>> results;
  for (const int64_t threads : {1, 4}) {
    NumThreadsGuard guard(threads);
    Rng rng(5);
    results.push_back(KMeans(points, 257, 7, 9, 10, rng));
  }
  EXPECT_TRUE(BitwiseEqual(results[0], results[1]))
      << "parallel assignment changed the centroids";
}

TEST(KMeansTest, DeterministicGivenSeed) {
  const std::vector<float> points = RandomPoints(120, 5, 3);
  Rng rng_a(42);
  Rng rng_b(42);
  const std::vector<float> a = KMeans(points, 120, 5, 6, 8, rng_a);
  const std::vector<float> b = KMeans(points, 120, 5, 6, 8, rng_b);
  EXPECT_TRUE(BitwiseEqual(a, b));
}

// All points identical: every init centroid is the same value, all points
// land in one cluster and the rest go empty; re-seeding must keep the
// result finite and equal to the unique point.
TEST(KMeansTest, DuplicatePointsAndEmptyClusterReseed) {
  const int64_t n = 16, dim = 3, k = 4;
  std::vector<float> points(static_cast<size_t>(n * dim));
  for (int64_t i = 0; i < n; ++i) {
    points[static_cast<size_t>(i * dim + 0)] = 1.5f;
    points[static_cast<size_t>(i * dim + 1)] = -2.0f;
    points[static_cast<size_t>(i * dim + 2)] = 0.25f;
  }
  Rng rng(7);
  const std::vector<float> centroids = KMeans(points, n, dim, k, 5, rng);
  ASSERT_EQ(centroids.size(), static_cast<size_t>(k * dim));
  for (int64_t c = 0; c < k; ++c) {
    EXPECT_FLOAT_EQ(centroids[static_cast<size_t>(c * dim + 0)], 1.5f);
    EXPECT_FLOAT_EQ(centroids[static_cast<size_t>(c * dim + 1)], -2.0f);
    EXPECT_FLOAT_EQ(centroids[static_cast<size_t>(c * dim + 2)], 0.25f);
  }
}

// Two well-separated blobs, k=2: each centroid converges to a blob mean
// and NearestCentroid routes each blob to its own centroid. Exercises the
// convergence early-exit (far fewer than `iterations` passes change an
// assignment).
TEST(KMeansTest, SeparatedBlobsConverge) {
  const int64_t n = 64, dim = 2;
  std::vector<float> points(static_cast<size_t>(n * dim));
  Rng noise(9);
  for (int64_t i = 0; i < n; ++i) {
    const float cx = i < n / 2 ? -10.0f : 10.0f;
    points[static_cast<size_t>(i * dim)] = cx + 0.1f * noise.NormalFloat();
    points[static_cast<size_t>(i * dim + 1)] = 0.1f * noise.NormalFloat();
  }
  Rng rng(13);
  const std::vector<float> centroids = KMeans(points, n, dim, 2, 100, rng);
  const int64_t left = NearestCentroid(points.data(), centroids, 2, dim);
  const int64_t right =
      NearestCentroid(points.data() + (n - 1) * dim, centroids, 2, dim);
  EXPECT_NE(left, right);
  EXPECT_NEAR(std::abs(centroids[static_cast<size_t>(left * dim)]), 10.0,
              0.5);
  EXPECT_NEAR(std::abs(centroids[static_cast<size_t>(right * dim)]), 10.0,
              0.5);
}

TEST(KMeansDeathTest, FewerPointsThanClusters) {
  const std::vector<float> points = RandomPoints(2, 4, 1);
  Rng rng(1);
  EXPECT_DEATH(KMeans(points, 2, 4, 3, 5, rng), "PMM_CHECK");
}

TEST(KMeansDeathTest, ZeroIterations) {
  const std::vector<float> points = RandomPoints(8, 2, 1);
  Rng rng(1);
  EXPECT_DEATH(KMeans(points, 8, 2, 2, 0, rng), "PMM_CHECK");
}

}  // namespace
}  // namespace pmmrec
